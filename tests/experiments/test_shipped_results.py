"""Integration: the shipped campaign cache reproduces the paper's shapes.

These tests read the default-scale campaign results from ``.repro_cache``
(shipped with the repository).  They skip when the cache is absent
(fresh checkout with the cache deleted) - the benchmark harness is the
place that re-runs campaigns.
"""

from __future__ import annotations

from statistics import median

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, fig10
from repro.experiments.runner import ExperimentContext
from repro.injection.campaign import CampaignConfig
from repro.workloads import MIBENCH_SUITE


@pytest.fixture(scope="module")
def context():
    ctx = ExperimentContext(faults_per_component=100, beam_hours=300)
    config = CampaignConfig(faults_per_component=100)
    missing = [
        name
        for name in MIBENCH_SUITE
        if not (ctx._injection.cache_dir / (config.cache_key(name) + ".json")).exists()
    ]
    if missing:
        pytest.skip(f"shipped campaign cache absent for {missing[:3]}...")
    return ctx


class TestPaperShapes:
    def test_fig6_sdc_agreement(self, context):
        rows = fig6.data(context)
        within_4x = sum(1 for row in rows if abs(row.ratio) <= 4)
        assert within_4x >= 8  # paper: 10/13

    def test_fig7_beam_always_higher(self, context):
        rows = fig7.data(context)
        assert sum(1 for row in rows if row.beam_higher) >= 12

    def test_fig7_outliers_are_small_code_benchmarks(self, context):
        rows = sorted(fig7.data(context), key=lambda r: -abs(r.ratio))
        top_three = {row.workload for row in rows[:3]}
        # Paper's outliers: StringSearch, MatMul, Qsort.
        assert top_three & {"StringSearch", "MatMul", "Qsort"}

    def test_fig8_beam_always_higher_and_large(self, context):
        rows = fig8.data(context)
        assert all(row.beam_higher for row in rows)
        assert min(abs(row.ratio) for row in rows) >= 5

    def test_fig8_minimum_is_a_streaming_benchmark(self, context):
        rows = fig8.data(context)
        smallest = min(rows, key=lambda row: abs(row.ratio))
        # Paper: CRC32 has the smallest SysCrash ratio (9x).
        assert smallest.workload in {"CRC32", "Rijndael E", "Rijndael D", "Jpeg D"}

    def test_fig9_combining_shrinks_disagreement(self, context):
        combined = median(abs(row.ratio) for row in fig9.data(context))
        appcrash = median(abs(row.ratio) for row in fig7.data(context))
        assert combined < appcrash

    def test_fig10_total_within_order_of_magnitude(self, context):
        bars = fig10.data(context)
        total = bars[-1]
        assert 1 <= total.ratio <= 20  # paper: 10.9x
        sdc = bars[0]
        assert abs(sdc.ratio) <= 4  # paper: ~1x

    def test_fig10_beam_grows_injection_flat(self, context):
        bars = fig10.data(context)
        beam_growth = bars[-1].beam_mean_fit / max(bars[0].beam_mean_fit, 1e-9)
        injection_growth = bars[-1].injection_mean_fit / max(
            bars[0].injection_mean_fit, 1e-9
        )
        assert beam_growth > 2.0
        assert injection_growth < 2.0
