"""Table IV must report the re-adjusted margin, not the planning margin.

The paper's Table IV margins are the Section IV-C *re-adjusted* margins
(``ComponentResult.margin``): p = 0.5 replaced by the measured AVF
shifted toward 0.5 by the conservative margin.  The conservative
planning margin (``ComponentResult.conservative_margin``) is
AVF-independent - if table4 ever regressed to it, every workload would
report the same margin per component and the table's min/max spread
would collapse.  These tests pin the choice.
"""

from __future__ import annotations

import pytest

from repro.experiments import table4
from repro.injection.campaign import ComponentResult, WorkloadResult
from repro.injection.classify import FaultEffect
from repro.injection.components import Component
from repro.injection.sampling import error_margin, readjusted_margin

_POPULATIONS = {
    Component.REGFILE: 2_816,
    Component.L1I: 32_768,
    Component.L1D: 32_768,
    Component.L2: 131_072,
    Component.DTLB: 4_096,
    Component.ITLB: 4_096,
}


def _result(name: str, masked: int, injections: int = 100) -> WorkloadResult:
    components = {}
    for component, population in _POPULATIONS.items():
        components[component] = ComponentResult(
            component=component,
            injections=injections,
            population_bits=population,
            counts={
                FaultEffect.MASKED: masked,
                FaultEffect.SDC: injections - masked,
            },
        )
    return WorkloadResult(
        workload_name=name, golden_cycles=1, components=components
    )


class _FakeContext:
    faults_per_component = 100

    def __init__(self, results):
        self._results = results

    def injection_results(self):
        return self._results


class TestTable4MarginChoice:
    def test_margins_are_the_readjusted_margins(self):
        """Each reported margin equals readjusted_margin(N, n, avf) -
        and differs from the AVF-independent conservative margin."""
        context = _FakeContext({"WL": _result("WL", masked=95)})
        for row in table4.data(context):
            population = _POPULATIONS[row.component]
            expected = readjusted_margin(population, 100, 0.05)
            conservative = error_margin(population, 100)
            assert row.avg_margin == row.min_margin == row.max_margin
            assert row.avg_margin == pytest.approx(expected, rel=1e-9)
            assert row.avg_margin < conservative

    def test_avf_spread_produces_margin_spread(self):
        """Two workloads with different AVFs must yield min < max; the
        conservative margin would flatten them to a single value."""
        context = _FakeContext({
            "Masked-heavy": _result("Masked-heavy", masked=98),
            "Vulnerable": _result("Vulnerable", masked=55),
        })
        for row in table4.data(context):
            assert row.min_margin < row.max_margin
            population = _POPULATIONS[row.component]
            assert row.min_margin == pytest.approx(
                readjusted_margin(population, 100, 0.02), rel=1e-9
            )
            assert row.max_margin == pytest.approx(
                readjusted_margin(population, 100, 0.45), rel=1e-9
            )

    def test_render_reports_the_tighter_margins(self):
        """The rendered table carries the re-adjusted (tighter) numbers."""
        context = _FakeContext({"WL": _result("WL", masked=98)})
        rendered = table4.render(context)
        adjusted = readjusted_margin(_POPULATIONS[Component.L2], 100, 0.02)
        conservative = error_margin(_POPULATIONS[Component.L2], 100)
        assert f"{adjusted * 100:.1f} %" in rendered
        assert f"{conservative * 100:.1f} %" != f"{adjusted * 100:.1f} %"
