"""Experiment drivers: rendering against a synthetic context.

The figure/table drivers are exercised with fabricated campaign results so
these tests are fast and deterministic; the live end-to-end path is covered
by the benchmark harness and the slow campaign tests.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.fit_model import injection_fit
from repro.beam.experiment import BeamResult
from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table2,
    table3,
    table4,
)
from repro.injection.campaign import ComponentResult, WorkloadResult
from repro.injection.classify import FaultEffect
from repro.injection.components import Component, component_bits
from repro.microarch.config import SCALED_A9_CONFIG
from repro.workloads import MIBENCH_SUITE


class FakeContext:
    """Quacks like ExperimentContext with synthetic campaign results."""

    def __init__(self, seed=1):
        self.machine = SCALED_A9_CONFIG
        self.faults_per_component = 100
        self.beam_hours = 100.0
        rng = random.Random(seed)
        self._injection = {}
        self._beam = {}
        for name in MIBENCH_SUITE:
            result = WorkloadResult(workload_name=name, golden_cycles=100_000)
            for component in Component:
                sdc = rng.randint(0, 15)
                app = rng.randint(0, 8)
                sys_ = rng.randint(0, 4)
                result.components[component] = ComponentResult(
                    component=component,
                    injections=100,
                    population_bits=component_bits(SCALED_A9_CONFIG, component),
                    counts={
                        FaultEffect.MASKED: 100 - sdc - app - sys_,
                        FaultEffect.SDC: sdc,
                        FaultEffect.APP_CRASH: app,
                        FaultEffect.SYS_CRASH: sys_,
                    },
                )
            self._injection[name] = result
            self._beam[name] = BeamResult(
                workload_name=name,
                beam_seconds=self.beam_hours * 3600,
                fluence=3.5e5 * self.beam_hours * 3600,
                golden_cycles=100_000,
                counts={
                    FaultEffect.SDC: rng.randint(0, 10),
                    FaultEffect.APP_CRASH: rng.randint(0, 20),
                    FaultEffect.SYS_CRASH: rng.randint(5, 60),
                    FaultEffect.MASKED: rng.randint(20, 80),
                },
                strikes_simulated=100,
                platform_strikes=50,
                natural_years=1e5,
            )

    @property
    def workloads(self):
        return MIBENCH_SUITE

    def injection_results(self):
        return self._injection

    def injection_fits(self):
        return {n: injection_fit(r) for n, r in self._injection.items()}

    def beam_results(self):
        return self._beam


@pytest.fixture(scope="module")
def context():
    return FakeContext()


ALL_BENCH_NAMES = list(MIBENCH_SUITE)


class TestTables:
    def test_table2_mentions_both_setups(self, context):
        text = table2.render(context)
        assert "Beam" in text and "L2 Cache" in text

    def test_table3_lists_all_benchmarks(self, context):
        text = table3.render(context)
        for name in ALL_BENCH_NAMES:
            assert name in text

    def test_table4_margins_in_percent(self, context):
        text = table4.render(context)
        assert "%" in text
        for component in ("Register File", "DTLB", "ITLB", "L2 Cache"):
            assert component in text

    def test_table4_data_monotone_with_sample(self, context):
        rows = table4.data(context)
        for row in rows:
            assert 0 < row.min_margin <= row.avg_margin <= row.max_margin < 1


class TestFigures:
    def test_fig3_fits_positive(self, context):
        data = fig3.data(context)
        assert set(data) == set(ALL_BENCH_NAMES)
        for fits in data.values():
            assert all(value >= 0 for value in fits.values())

    def test_fig3_render(self, context):
        text = fig3.render(context)
        assert "SysCrash FIT" in text

    def test_fig4_sections_per_component(self, context):
        text = fig4.render(context)
        for component in Component:
            assert component.label in text

    def test_fig4_breakdowns_sum_to_one(self, context):
        for rows in fig4.data(context).values():
            for cell in rows:
                total = cell.sdc + cell.app_crash + cell.sys_crash + cell.masked
                assert total == pytest.approx(1.0)

    def test_fig5_totals(self, context):
        for fits in fig5.data(context).values():
            assert fits.total == pytest.approx(
                fits.sdc + fits.app_crash + fits.sys_crash
            )

    @pytest.mark.parametrize("module", [fig6, fig7, fig8, fig9])
    def test_ratio_figures_cover_suite(self, context, module):
        rows = module.data(context)
        assert {row.workload for row in rows} == set(ALL_BENCH_NAMES)
        text = module.render(context)
        assert "beam higher" in text

    def test_fig10_three_bars_and_paper_reference(self, context):
        bars = fig10.data(context)
        assert len(bars) == 3
        text = fig10.render(context)
        assert "10.9" in text  # paper's headline total ratio
