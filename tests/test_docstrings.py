"""Docstring-coverage gate for the public injection and analysis APIs.

A pure-AST check (no imports, no third-party tooling): every public
module, class, top-level function and method under ``repro.injection``
and ``repro.analysis`` must carry a docstring.  These two packages are
the library surface users script against (campaigns, sampling
statistics, reports), so an undocumented public name there is a bug.

Private names (leading underscore), dunder methods and nested helper
functions are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
GATED_PACKAGES = ("src/repro/injection", "src/repro/analysis")

GATED_FILES = sorted(
    path
    for package in GATED_PACKAGES
    for path in (REPO / package).glob("*.py")
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module) -> list[str]:
    """Qualified names of public definitions lacking a docstring."""
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                missing.append(node.name)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(node.name)
            for member in node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not _is_public(member.name):
                    continue
                if ast.get_docstring(member) is None:
                    missing.append(f"{node.name}.{member.name}")
    return missing


@pytest.mark.parametrize(
    "path", GATED_FILES, ids=lambda p: str(p.relative_to(REPO / "src"))
)
def test_public_api_is_documented(path):
    tree = ast.parse(path.read_text())
    missing = _missing_docstrings(tree)
    assert not missing, (
        f"{path.relative_to(REPO)} has undocumented public definitions: "
        + ", ".join(missing)
    )


def test_the_gate_actually_gates():
    """Self-test: the checker flags an undocumented function and class
    member, and accepts documented ones."""
    flagged = _missing_docstrings(
        ast.parse(
            '"""Module."""\n'
            "def documented():\n"
            '    """Doc."""\n'
            "def bare(): pass\n"
            "def _private(): pass\n"
            "class Thing:\n"
            '    """Doc."""\n'
            "    def method(self): pass\n"
            "    def __repr__(self): return ''\n"
        )
    )
    assert flagged == ["bare", "Thing.method"]
