"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_inject_defaults(self):
        args = build_parser().parse_args(["inject", "CRC32"])
        assert args.faults == 50

    def test_beam_hours(self):
        args = build_parser().parse_args(["beam", "CRC32", "--hours", "12"])
        assert args.hours == 12.0

    def test_report_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CRC32" in out and "Susan S" in out

    def test_run(self, capsys):
        assert main(["run", "Susan C"]) == 0
        out = capsys.readouterr().out
        assert "matches oracle" in out

    def test_run_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "NotABenchmark"])

    def test_disasm(self, capsys):
        assert main(["disasm", "StringSearch"]) == 0
        out = capsys.readouterr().out
        assert "0x00010000:" in out
        assert "syscall" in out

    def test_report_single_figure_from_cache(self, capsys):
        """`report fig10` renders from the shipped campaign cache."""
        from pathlib import Path

        from repro.injection.campaign import CampaignConfig, default_cache_dir

        key = CampaignConfig(faults_per_component=100).cache_key("CRC32")
        if not (default_cache_dir() / f"{key}.json").exists():
            pytest.skip("shipped campaign cache absent")
        assert main(["report", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out


class TestObservabilityFlags:
    def test_parser_accepts_observability_flags(self):
        args = build_parser().parse_args([
            "inject", "CRC32", "--no-events", "--trace-on-crash", "5",
            "--metrics", "m.json",
        ])
        assert args.no_events is True
        assert args.trace_on_crash == 5
        assert args.metrics == "m.json"

    def test_parser_accepts_run_trace_and_stats(self):
        args = build_parser().parse_args(["run", "CRC32", "--trace", "8"])
        assert args.trace == 8
        args = build_parser().parse_args(
            ["stats", "runs", "--metrics", "s.json"]
        )
        assert args.journal == "runs"
        assert args.metrics == "s.json"

    def test_run_with_trace_prints_instruction_tail(self, capsys):
        assert main(["run", "StringSearch", "--trace", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace   : last 3 instruction(s)" in out

    def test_stats_rejects_missing_or_empty_journal(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert main(["stats", str(tmp_path)]) == 2
        assert "no *.jsonl" in capsys.readouterr().err

    def test_stats_rebuilds_propagation_from_journal(
        self, tmp_path, monkeypatch, capsys
    ):
        """Acceptance flow: journaled campaign -> `stats` replays it and
        the propagation table matches the journal's raw events."""
        from repro.injection.classify import FaultEffect
        from repro.injection.journal import read_journal
        from repro.observability.events import masking_mechanism
        from repro.observability.metrics import read_metrics

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        journal_dir = tmp_path / "journal"
        assert main([
            "inject", "StringSearch", "-n", "2", "--journal", str(journal_dir),
        ]) == 0
        capsys.readouterr()

        metrics_path = tmp_path / "stats.json"
        assert main([
            "stats", str(journal_dir), "--metrics", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign telemetry" in out
        assert "replayed from journal" in out

        summary = read_metrics(metrics_path)["values"]
        assert summary["completed"] == 12  # 2 faults x 6 components
        assert summary["live_completed"] == 0
        assert summary["events_observed"] == 12

        # The propagation aggregates must equal a recomputation from the
        # journal's raw per-injection events.
        _meta, records, _q = read_journal(next(journal_dir.glob("*.jsonl")))
        expected: dict = {}
        for record in records:
            assert record.events, "lifetime events are on by default"
            if record.effect is FaultEffect.MASKED:
                tally = expected.setdefault(record.component.name, {})
                mechanism = masking_mechanism(record.events)
                tally[mechanism] = tally.get(mechanism, 0) + 1
        got = {
            name: entry["masked_mechanisms"]
            for name, entry in summary["propagation"].items()
            if entry["masked_mechanisms"]
        }
        assert got == expected
        if expected:
            assert "Fault propagation" in out

    def test_inject_without_events_prints_no_propagation(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["inject", "StringSearch", "-n", "1", "--no-events"]) == 0
        out = capsys.readouterr().out
        assert "Campaign telemetry" in out
        assert "Fault propagation" not in out

    def test_stats_degrades_gracefully_on_pr2_era_journal(
        self, tmp_path, capsys
    ):
        """Regression: journals written before lifetime events existed
        (no ``ended``/``events``/``trace`` record fields) must replay
        through `stats` with default features and no crash."""
        journal = tmp_path / "fi-legacy.jsonl"
        journal.write_text(
            '{"type":"meta","workload":"CRC32","machine":"cortex-a9-scaled",'
            '"faults_per_component":4,"seed":7,"cluster_size":1,'
            '"golden_cycles":120000,"version":1}\n'
            '{"type":"injection","component":"L1D","index":0,"bit":11,'
            '"cycle":5000,"effect":"MASKED","wall":0.01}\n'
            '{"type":"injection","component":"L1D","index":1,"bit":12,'
            '"cycle":6000,"effect":"SDC","wall":0.01}\n'
            '{"type":"injection","component":"REGFILE","index":0,"bit":3,'
            '"cycle":7000,"effect":"APP_CRASH","wall":0.02}\n'
            '{"type":"quarantine","component":"REGFILE","index":1,"bit":4,'
            '"cycle":8000,"reason":"worker died"}\n'
        )
        assert main(["stats", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Campaign telemetry" in out
        assert "3 injection(s), 1 quarantined" in out
        # No lifetime events in a PR-2-era journal: the propagation table
        # degrades to the explanatory note instead of crashing.
        assert "predates them" in out

    def test_calibration_table_degrades_on_legacy_diagnostics(self):
        """The calibration report renders "" - never a KeyError - for
        diagnostics shapes that predate learned sampling."""
        from repro.analysis.report import calibration_table

        legacy = {
            "strata": {"L1D": {"widths": {"AVF": 0.1}, "avf": 0.2}},
            "target_margin": 0.05,
        }
        assert calibration_table(legacy) == ""
        assert calibration_table({"strata": None}) == ""
        assert calibration_table({}) == ""


class TestInjectResilienceFlags:
    def test_parser_accepts_journal_flags(self):
        args = build_parser().parse_args([
            "inject", "CRC32", "--journal", "j", "--resume",
            "--timeout", "2.5", "--retries", "1", "-j", "2",
        ])
        assert args.journal == "j"
        assert args.resume is True
        assert args.timeout == 2.5
        assert args.retries == 1
        assert args.jobs == 2

    def test_resume_requires_journal(self, capsys):
        assert main(["inject", "CRC32", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_parser_accepts_adaptive_flags(self):
        args = build_parser().parse_args([
            "inject", "CRC32", "--target-margin", "0.02",
            "--confidence", "0.95", "--batch-size", "25",
            "--min-faults", "10", "--max-faults", "500",
        ])
        assert args.target_margin == 0.02
        assert args.confidence == 0.95
        assert args.batch_size == 25
        assert args.min_faults == 10
        assert args.max_faults == 500

    def test_adaptive_defaults(self):
        args = build_parser().parse_args(["inject", "CRC32"])
        assert args.target_margin is None
        assert args.confidence == 0.99
        assert args.batch_size == 50
        assert args.min_faults == 20
        assert args.max_faults == 1000

    def test_confidence_must_be_a_supported_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["inject", "CRC32", "--confidence", "0.42"]
            )

    def test_parser_accepts_learned_sampling_flags(self):
        args = build_parser().parse_args(
            ["inject", "CRC32", "--target-margin", "0.1", "--learned-sampling"]
        )
        assert args.learned_sampling is True
        args = build_parser().parse_args(
            ["inject", "CRC32", "--no-learned-sampling"]
        )
        assert args.learned_sampling is False
        assert build_parser().parse_args(
            ["inject", "CRC32"]
        ).learned_sampling is False

    def test_learned_sampling_requires_target_margin(self, capsys):
        assert main(["inject", "CRC32", "--learned-sampling"]) == 2
        assert "--target-margin" in capsys.readouterr().err

    def test_learned_sampling_rejects_fabric(self, capsys):
        assert main([
            "inject", "CRC32", "--learned-sampling",
            "--target-margin", "0.1", "--fabric", "http://localhost:1",
        ]) == 2
        err = capsys.readouterr().err
        assert "fabric" in err

    def test_adaptive_inject_prints_achieved_margins(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main([
            "inject", "StringSearch", "--target-margin", "0.4",
            "--min-faults", "4", "--max-faults", "8", "--batch-size", "12",
        ]) == 0
        out = capsys.readouterr().out
        assert "adaptive to +/-40%" in out
        assert "Adaptive campaign: achieved margins" in out
        assert "Campaign telemetry" in out

    def test_adaptive_journaled_inject_and_forced_resume(
        self, tmp_path, monkeypatch, capsys
    ):
        """Acceptance flow: `inject --target-margin ... --resume` replays
        a journaled adaptive campaign and continues without re-running the
        journaled injections (here: nothing is left, so the journal stays
        byte-identical)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        journal_dir = tmp_path / "journal"
        flags = [
            "inject", "StringSearch", "--target-margin", "0.4",
            "--min-faults", "4", "--max-faults", "8",
            "--journal", str(journal_dir),
        ]
        assert main(flags) == 0
        capsys.readouterr()
        journals = list(journal_dir.glob("*.jsonl"))
        assert len(journals) == 1
        assert "adapt" in journals[0].name  # adaptive cache key, not fixed
        before = journals[0].read_text()

        for cached in (tmp_path / "cache").glob("*.json"):
            cached.unlink()
        assert main(flags + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "Adaptive campaign: achieved margins" in out
        assert journals[0].read_text() == before

    def test_journaled_inject_and_forced_resume(self, tmp_path, monkeypatch, capsys):
        """CI smoke: a tiny journaled campaign, then a forced resume that
        replays every injection instead of re-simulating."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        journal_dir = tmp_path / "journal"
        assert main([
            "inject", "StringSearch", "-n", "2", "--journal", str(journal_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign telemetry" in out
        journals = list(journal_dir.glob("*.jsonl"))
        assert len(journals) == 1
        before = journals[0].read_text()
        assert before.count('"injection"') == 12  # 2 faults x 6 components

        # Drop the cache so the resume actually exercises the journal.
        for cached in (tmp_path / "cache").glob("*.json"):
            cached.unlink()
        assert main([
            "inject", "StringSearch", "-n", "2",
            "--journal", str(journal_dir), "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign telemetry" in out
        assert "replayed" in out
        # Nothing new was simulated: the journal is byte-identical.
        assert journals[0].read_text() == before
