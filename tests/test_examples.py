"""Smoke tests: the runnable examples stay runnable."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "matches oracle" in out
        assert "cycles" in out

    def test_custom_workload(self, capsys):
        out = run_example("custom_workload.py", capsys)
        assert "expected result: 120" in out
        assert "SDC" in out
        assert "AppCrash" in out

    @pytest.mark.slow
    def test_observability(self, capsys):
        out = run_example("observability.py", capsys)
        assert "struck region" in out
        assert "user_data" in out
