"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.assembler import Assembler
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.system import System


@pytest.fixture
def layout():
    return DEFAULT_LAYOUT


@pytest.fixture
def machine_config():
    return SCALED_A9_CONFIG


@pytest.fixture
def user_assembler():
    """Assembler targeting the user text/data regions."""
    return Assembler(
        text_base=DEFAULT_LAYOUT.user_text_base,
        data_base=DEFAULT_LAYOUT.user_data_base,
    )


@pytest.fixture
def run_program(user_assembler):
    """Assemble and run a user program; returns the RunResult."""

    def runner(source: str, max_cycles: int = 5_000_000, trace=None, **system_kwargs):
        program = user_assembler.assemble(source, entry="_start")
        system = System(program, **system_kwargs)
        return system.run(max_cycles=max_cycles, trace=trace)

    return runner


@pytest.fixture
def run_system(user_assembler):
    """Like run_program but also returns the System for inspection."""

    def runner(source: str, max_cycles: int = 5_000_000, **system_kwargs):
        program = user_assembler.assemble(source, entry="_start")
        system = System(program, **system_kwargs)
        result = system.run(max_cycles=max_cycles)
        return system, result

    return runner


EXIT0 = """
    movi r0, 0
    movi r7, 0
    syscall
"""


@pytest.fixture
def exit0():
    """Assembly epilogue: exit(0)."""
    return EXIT0
