"""Memory layout and page-table construction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.kernel.layout import (
    DEFAULT_LAYOUT,
    MMIO_BASE,
    PAGE_SIZE,
    PTE_EXEC,
    PTE_READ,
    PTE_USER,
    PTE_VALID,
    PTE_WRITE,
    MemoryLayout,
)


class TestRegions:
    def test_regions_ordered_and_disjoint(self):
        layout = DEFAULT_LAYOUT
        boundaries = [
            layout.kernel_text_base,
            layout.kernel_data_base,
            layout.page_table_base,
            layout.user_text_base,
            layout.check_text_base,
            layout.user_data_base,
            layout.output_buffer_base,
            layout.golden_buffer_base,
            layout.user_stack_base,
            layout.user_stack_top,
            layout.memory_size,
        ]
        assert boundaries == sorted(boundaries)
        assert len(set(boundaries)) == len(boundaries)

    def test_page_table_fits_kernel_region(self):
        layout = DEFAULT_LAYOUT
        assert (
            layout.page_table_base + layout.page_table_size <= layout.kernel_end
        )

    def test_os_background_region_has_room_for_scaled_l2(self):
        layout = DEFAULT_LAYOUT
        assert layout.os_background_base + 16 * 1024 <= layout.kernel_end

    def test_region_of(self):
        layout = DEFAULT_LAYOUT
        assert layout.region_of(0x0) == "kernel_text"
        assert layout.region_of(layout.page_table_base) == "page_table"
        assert layout.region_of(layout.user_text_base) == "user_text"
        assert layout.region_of(layout.user_stack_top - 4) == "user_stack"
        assert layout.region_of(MMIO_BASE) == "mmio"

    @given(paddr=st.integers(0, DEFAULT_LAYOUT.memory_size - 1))
    def test_region_of_total(self, paddr):
        assert DEFAULT_LAYOUT.region_of(paddr) != "unmapped" or paddr >= 0


class TestPageTable:
    @pytest.fixture(scope="class")
    def table(self):
        return DEFAULT_LAYOUT.build_page_table()

    def test_one_pte_per_page(self, table):
        assert len(table) == DEFAULT_LAYOUT.page_count

    def test_identity_mapping(self, table):
        for vpn, pte in enumerate(table):
            assert pte >> 12 == vpn

    def test_all_valid(self, table):
        assert all(pte & PTE_VALID for pte in table)

    def test_kernel_pages_not_user_accessible(self, table):
        layout = DEFAULT_LAYOUT
        for vpn in range(layout.kernel_end // PAGE_SIZE):
            assert not table[vpn] & PTE_USER

    def test_user_text_is_rx_not_w(self, table):
        vpn = DEFAULT_LAYOUT.user_text_base // PAGE_SIZE
        pte = table[vpn]
        assert pte & PTE_READ and pte & PTE_EXEC and pte & PTE_USER
        assert not pte & PTE_WRITE

    def test_user_data_is_rw_not_x(self, table):
        vpn = DEFAULT_LAYOUT.user_data_base // PAGE_SIZE
        pte = table[vpn]
        assert pte & PTE_READ and pte & PTE_WRITE and pte & PTE_USER
        assert not pte & PTE_EXEC

    def test_golden_buffer_is_read_only(self, table):
        vpn = DEFAULT_LAYOUT.golden_buffer_base // PAGE_SIZE
        pte = table[vpn]
        assert pte & PTE_READ and not pte & PTE_WRITE

    def test_stack_is_rw(self, table):
        vpn = (DEFAULT_LAYOUT.user_stack_top - 4) // PAGE_SIZE
        pte = table[vpn]
        assert pte & PTE_READ and pte & PTE_WRITE and pte & PTE_USER


class TestFullSizeLayout:
    def test_cortex_layout_consistent(self):
        layout = MemoryLayout(memory_size=0x800000, os_background_base=0x400000)
        table = layout.build_page_table()
        assert len(table) == 0x800000 // PAGE_SIZE
        assert layout.os_background_base + 512 * 1024 <= layout.memory_size
