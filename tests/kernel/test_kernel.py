"""Kernel behaviour: syscalls, output plumbing, beam-mode exit redirect."""

from __future__ import annotations

import struct

import pytest

from repro.beam.checkroutine import build_check_program
from repro.errors import ProgramExit
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.kernel.source import build_kernel
from repro.microarch.system import GOLDEN_DATA_OFFSET, System


class TestKernelImage:
    def test_kernel_assembles(self, layout):
        kernel = build_kernel(layout)
        assert kernel.entry == layout.kernel_text_base
        assert kernel.segment("text").base == layout.kernel_text_base
        assert kernel.segment("data").base == layout.kernel_data_base

    def test_exception_vector_at_0x40(self, layout):
        kernel = build_kernel(layout)
        assert kernel.symbols["exc_entry"] == 0x40

    def test_kernel_fits_its_region(self, layout):
        kernel = build_kernel(layout)
        assert kernel.segment("text").end <= layout.kernel_data_base
        assert kernel.segment("data").end <= layout.kernel_stack_top - 0x400


class TestSyscalls:
    def test_write_copies_to_console_and_buffer(self, run_system, exit0):
        system, result = run_system(f"""
_start:
    la   r0, msg
    movi r1, 6
    movi r7, 1
    syscall
{exit0}
    .data
msg: .ascii "kernel"
""")
        assert result.output == b"kernel"
        buffered = system.l1d.peek(DEFAULT_LAYOUT.output_buffer_base, 6)
        assert buffered == b"kernel"

    def test_write_word_byte_order(self, run_system, exit0):
        system, result = run_system(f"""
_start:
    li   r0, 0x11223344
    movi r7, 3
    syscall
{exit0}
""")
        assert result.output == struct.pack("<I", 0x11223344)
        buffered = system.l1d.peek(DEFAULT_LAYOUT.output_buffer_base, 4)
        assert buffered == struct.pack("<I", 0x11223344)

    def test_mixed_writes_advance_cursor(self, run_system, exit0):
        system, result = run_system(f"""
_start:
    la   r0, msg
    movi r1, 3
    movi r7, 1
    syscall
    movi r0, 0x41
    movi r7, 3
    syscall
{exit0}
    .data
msg: .ascii "abc"
""")
        assert result.output == b"abc" + struct.pack("<I", 0x41)
        buffered = system.l1d.peek(DEFAULT_LAYOUT.output_buffer_base, 7)
        assert buffered == b"abcA\x00\x00\x00"

    def test_alive_counts(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r0, 1
    movi r7, 2
    syscall
    movi r0, 2
    movi r7, 2
    syscall
{exit0}
""")
        assert result.alive_count == 2

    def test_syscall_preserves_registers(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 11
    movi r2, 22
    movi r3, 33
    movi r4, 44
    movi r5, 55
    movi r0, 1
    movi r7, 2
    syscall
    add  r0, r1, r2
    add  r0, r0, r3
    add  r0, r0, r4
    add  r0, r0, r5
    movi r7, 3
    syscall
{exit0}
""")
        assert struct.unpack("<I", result.output)[0] == 11 + 22 + 33 + 44 + 55


class TestBeamModeExit:
    def _beam_system(self, user_source: str, golden: bytes, user_assembler):
        program = user_assembler.assemble(user_source, entry="_start")
        check = build_check_program(DEFAULT_LAYOUT, len(golden))
        return System(
            program,
            check_program=check,
            golden_output=golden,
            beam_mode=True,
        )

    def test_clean_run_passes_check(self, user_assembler):
        golden = struct.pack("<I", 7)
        system = self._beam_system("""
_start:
    movi r0, 7
    movi r7, 3
    syscall
    movi r0, 0
    movi r7, 0
    syscall
""", golden, user_assembler)
        result = system.run(max_cycles=5_000_000)
        assert isinstance(result.outcome, ProgramExit) and result.outcome.status == 0
        assert result.check_done
        assert not result.sdc_flag

    def test_corrupted_output_flags_sdc(self, user_assembler):
        golden = struct.pack("<I", 8)  # expected 8, program writes 7
        system = self._beam_system("""
_start:
    movi r0, 7
    movi r7, 3
    syscall
    movi r0, 0
    movi r7, 0
    syscall
""", golden, user_assembler)
        result = system.run(max_cycles=5_000_000)
        assert result.check_done
        assert result.sdc_flag

    def test_exit_status_preserved_through_check(self, user_assembler):
        golden = b""
        system = self._beam_system("""
_start:
    movi r0, 5
    movi r7, 0
    syscall
""", golden, user_assembler)
        result = system.run(max_cycles=5_000_000)
        assert isinstance(result.outcome, ProgramExit)
        assert result.outcome.status == 5
        assert result.check_done

    def test_non_beam_mode_skips_check(self, run_program, exit0):
        result = run_program(f"_start:\n{exit0}")
        assert not result.check_done


class TestSoftReset:
    def test_soft_reset_keeps_caches_resets_core(self, run_system, exit0):
        system, result = run_system(f"""
_start:
    la   r1, buf
    movi r2, 9
    stw  r2, [r1]
{exit0}
    .data
buf: .space 8
""")
        assert result.exited_cleanly
        occupancy_before = system.l1d.occupancy()
        system.soft_reset()
        assert system.l1d.occupancy() == occupancy_before
        assert system.core.cycle == 0
        assert system.core.pc == system.kernel.entry

    def test_soft_reset_allows_second_run(self, run_system):
        system, result = run_system("""
_start:
    movi r0, 3
    movi r7, 3
    syscall
    movi r0, 0
    movi r7, 0
    syscall
""")
        first_output = result.output
        system.soft_reset()
        second = system.run(max_cycles=5_000_000)
        assert second.exited_cleanly
        assert second.output == first_output

    def test_second_run_is_faster_warm(self, run_system):
        """The warm run misses less: the hierarchy kept the working set."""
        system, result = run_system("""
_start:
    movi r2, 0
    la   r1, buf
loop:
    ldw  r3, [r1]
    addi r1, r1, 32
    addi r2, r2, 1
    cmpi r2, 32
    blt  loop
    movi r0, 0
    movi r7, 0
    syscall
    .data
buf: .space 1024
""")
        cold_cycles = result.cycles
        system.soft_reset()
        warm = system.run(max_cycles=5_000_000)
        assert warm.cycles < cold_cycles
