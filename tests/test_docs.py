"""Documentation honesty checks.

Three gates keep the prose from drifting away from the code:

1. ``docs/CLI.md`` is diffed against the real argparse parser in both
   directions - every subcommand and every long flag must be documented,
   and nothing documented may be missing from the parser.
2. Every relative markdown link in README.md, EXPERIMENTS.md, DESIGN.md
   and docs/*.md must resolve to an existing file.
3. Every script in examples/ must byte-compile.
"""

from __future__ import annotations

import argparse
import py_compile
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
CLI_DOC = REPO / "docs" / "CLI.md"

LINKED_DOCS = sorted(
    [
        REPO / "README.md",
        REPO / "EXPERIMENTS.md",
        REPO / "DESIGN.md",
        *(REPO / "docs").glob("*.md"),
    ],
    key=lambda path: path.name,
)

FLAG_PATTERN = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^## repro (\S+)\s*$", re.MULTILINE)


def _subparsers() -> dict[str, argparse.ArgumentParser]:
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("parser has no subcommands")


def _long_flags(parser: argparse.ArgumentParser) -> set[str]:
    flags = set()
    for action in parser._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        flags.update(s for s in action.option_strings if s.startswith("--"))
    return flags


def _doc_sections() -> dict[str, str]:
    """Map each ``## repro <command>`` heading to its section body."""
    text = CLI_DOC.read_text()
    sections: dict[str, str] = {}
    for match in HEADING_PATTERN.finditer(text):
        start = match.end()
        next_heading = text.find("\n## ", start)
        end = len(text) if next_heading == -1 else next_heading
        sections[match.group(1)] = text[start:end]
    return sections


class TestCliReference:
    def test_every_subcommand_has_a_section_and_vice_versa(self):
        assert set(_doc_sections()) == set(_subparsers())

    @pytest.mark.parametrize("command", sorted(_subparsers()))
    def test_documented_flags_match_the_parser(self, command):
        """Both directions: an undocumented flag fails, and so does a
        documented flag the parser no longer accepts."""
        section = _doc_sections()[command]
        documented = set(FLAG_PATTERN.findall(section))
        actual = _long_flags(_subparsers()[command])
        missing = actual - documented
        stale = documented - actual
        assert not missing, (
            f"docs/CLI.md section 'repro {command}' does not document: "
            f"{sorted(missing)}"
        )
        assert not stale, (
            f"docs/CLI.md section 'repro {command}' documents flags the "
            f"parser does not accept: {sorted(stale)}"
        )

    def test_report_choices_are_documented(self):
        """The report command's positional choices appear in its section."""
        section = _doc_sections()["report"]
        report = _subparsers()["report"]
        (what,) = [
            action for action in report._actions if action.dest == "what"
        ]
        for choice in what.choices:
            assert f"`{choice}`" in section, (
                f"report choice {choice!r} missing from docs/CLI.md"
            )


class TestMarkdownLinks:
    @pytest.mark.parametrize(
        "path", LINKED_DOCS, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_relative_links_resolve(self, path):
        broken = []
        for target in LINK_PATTERN.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name} has broken links: {broken}"

    def test_the_docs_are_linked_from_the_readme(self):
        """The architecture and CLI pages must be reachable from README."""
        readme = (REPO / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/CLI.md" in readme


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        sorted((REPO / "examples").glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_examples_compile(self, script, tmp_path):
        py_compile.compile(
            str(script), cfile=str(tmp_path / "out.pyc"), doraise=True
        )
