"""AES reference implementation: FIPS-197 vectors and algebraic properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.workloads import _aes


class TestFIPS197:
    KEY = bytes(range(16))
    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
    CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_encrypt_vector(self):
        assert _aes.encrypt_ecb(self.PLAINTEXT, self.KEY) == self.CIPHERTEXT

    def test_decrypt_vector(self):
        assert _aes.decrypt_ecb(self.CIPHERTEXT, self.KEY) == self.PLAINTEXT

    def test_key_schedule_appendix_a(self):
        # FIPS-197 Appendix A key expansion example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        words = _aes.expand_key(key)
        assert len(words) == 44
        assert words[0] == 0x2B7E1516
        assert words[4] == 0xA0FAFE17
        assert words[43] == 0xB6630CA6


class TestTables:
    def test_sbox_is_a_permutation(self):
        assert sorted(_aes.SBOX) == list(range(256))

    def test_inv_sbox_inverts(self):
        for value in range(256):
            assert _aes.INV_SBOX[_aes.SBOX[value]] == value

    def test_te_tables_consistent_with_sbox(self):
        for x in range(256):
            s = _aes.SBOX[x]
            assert (_aes.TE0[x] >> 16) & 0xFF == s
            assert (_aes.TE2[x] >> 24) & 0xFF == s

    def test_td_tables_consistent_with_inv_sbox(self):
        for x in range(256):
            s = _aes.INV_SBOX[x]
            e = _aes._gf_mul(s, 14)
            assert (_aes.TD0[x] >> 24) & 0xFF == e


class TestProperties:
    @given(data=st.binary(min_size=16, max_size=64), key=st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, data, key):
        data = data[: len(data) - len(data) % 16]
        if not data:
            data = b"\x00" * 16
        assert _aes.decrypt_ecb(_aes.encrypt_ecb(data, key), key) == data

    @given(key=st.binary(min_size=16, max_size=16))
    def test_encryption_changes_data(self, key):
        plaintext = b"\x00" * 16
        assert _aes.encrypt_ecb(plaintext, key) != plaintext

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError):
            _aes.encrypt_ecb(b"123", b"k" * 16)
        with pytest.raises(ValueError):
            _aes.expand_key(b"short")

    def test_gf_mul_basics(self):
        assert _aes._gf_mul(0x57, 0x02) == 0xAE
        assert _aes._gf_mul(0x57, 0x13) == 0xFE  # FIPS-197 example
