"""Suite registry and workload metadata (Table III)."""

from __future__ import annotations

import pytest

from repro.kernel.layout import DEFAULT_LAYOUT
from repro.workloads import MIBENCH_SUITE, get_workload, workload_names
from repro.workloads.base import Characteristic

EXPECTED_NAMES = [
    "CRC32",
    "Dijkstra",
    "FFT",
    "Jpeg C",
    "Jpeg D",
    "MatMul",
    "Qsort",
    "Rijndael E",
    "Rijndael D",
    "StringSearch",
    "Susan C",
    "Susan E",
    "Susan S",
]


class TestRegistry:
    def test_all_13_benchmarks_present(self):
        assert workload_names() == EXPECTED_NAMES

    def test_get_workload(self):
        assert get_workload("CRC32").name == "CRC32"

    def test_unknown_workload_lists_known(self):
        with pytest.raises(KeyError, match="CRC32"):
            get_workload("nope")

    def test_characteristics_match_table3(self):
        table = {
            "CRC32": Characteristic.CPU,
            "Dijkstra": Characteristic.CONTROL | Characteristic.MEMORY,
            "FFT": Characteristic.MEMORY,
            "Jpeg C": Characteristic.CPU,
            "Jpeg D": Characteristic.CPU,
            "MatMul": Characteristic.MEMORY,
            "Qsort": Characteristic.MEMORY | Characteristic.CONTROL,
            "Rijndael E": Characteristic.MEMORY,
            "Rijndael D": Characteristic.MEMORY,
            "StringSearch": Characteristic.MEMORY | Characteristic.CONTROL,
            "Susan C": Characteristic.CPU,
            "Susan E": Characteristic.CPU,
            "Susan S": Characteristic.CPU,
        }
        for name, expected in table.items():
            assert get_workload(name).characteristics == expected

    def test_paper_inputs_documented(self):
        for workload in MIBENCH_SUITE.values():
            assert workload.paper_input
            assert workload.scaled_input


class TestPrograms:
    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_programs_assemble(self, name):
        program = get_workload(name).program(DEFAULT_LAYOUT)
        assert program.segment("text").base == DEFAULT_LAYOUT.user_text_base

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_programs_fit_their_regions(self, name):
        layout = DEFAULT_LAYOUT
        program = get_workload(name).program(layout)
        assert program.segment("text").end <= layout.check_text_base
        data = program.segment("data")
        assert data.end <= layout.output_buffer_base

    def test_program_memoized_per_layout(self):
        workload = get_workload("CRC32")
        assert workload.program(DEFAULT_LAYOUT) is workload.program(DEFAULT_LAYOUT)

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_reference_outputs_nonempty_and_stable(self, name):
        workload = get_workload(name)
        first = workload.reference_output()
        assert first
        assert workload.reference_output() == first
