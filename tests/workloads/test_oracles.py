"""End-to-end validation: every workload's simulated output equals its
pure-Python reference oracle, with heartbeats flowing and clean exits.

These are the strongest tests in the suite: they exercise the assembler,
loader, MMU, caches, TLBs, pipeline semantics, kernel syscall paths and the
workload implementations together.
"""

from __future__ import annotations

import pytest

from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.system import System
from repro.workloads import MIBENCH_SUITE, get_workload

ALL_NAMES = list(MIBENCH_SUITE)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_matches_oracle(name):
    workload = get_workload(name)
    system = System(workload.program(DEFAULT_LAYOUT))
    result = system.run(max_cycles=100_000_000)
    assert result.exited_cleanly, f"{name}: {result.outcome}"
    assert result.output == workload.reference_output(), f"{name} output differs"
    assert result.alive_count >= 1, f"{name} sent no heartbeat"


@pytest.mark.parametrize("name", ["Dijkstra", "Susan C", "StringSearch"])
def test_workload_deterministic_across_runs(name):
    workload = get_workload(name)
    results = []
    for _ in range(2):
        system = System(workload.program(DEFAULT_LAYOUT))
        result = system.run(max_cycles=100_000_000)
        results.append((result.output, result.cycles, result.counters.instructions))
    assert results[0] == results[1]


def test_footprint_classes_differ():
    """Cache-filling vs small-footprint classes are real (Fig. 8 premise).

    After a complete run, CRC32 (streams 1.25x L2) must occupy far more of
    the L2 than Susan C (tiny image).
    """
    occupancies = {}
    for name in ("CRC32", "Susan C"):
        workload = get_workload(name)
        system = System(workload.program(DEFAULT_LAYOUT))
        system.run(max_cycles=100_000_000)
        occupancies[name] = system.l2.occupancy()
    assert occupancies["CRC32"] > 0.9
    assert occupancies["Susan C"] < 0.5


def test_qsort_output_idempotent_after_soft_reset():
    """Back-to-back beam executions must reproduce the golden output even
    for workloads that mutate their input in place (Qsort sorts its array)."""
    workload = get_workload("Qsort")
    system = System(workload.program(DEFAULT_LAYOUT))
    first = system.run(max_cycles=100_000_000)
    system.soft_reset()
    second = system.run(max_cycles=100_000_000)
    assert first.output == second.output == workload.reference_output()
