"""Per-workload algorithmic properties of the reference oracles.

The oracles are the ground truth the simulator is validated against, so
they get their own scrutiny: cross-checks against the standard library /
numpy and structural invariants of each algorithm.
"""

from __future__ import annotations

import binascii
import struct

import numpy as np
import pytest

from repro.workloads import crc32, dijkstra, fft, jpeg, matmul, qsort, stringsearch, susan
from repro.workloads.base import pack_words


def words_of(data: bytes) -> list[int]:
    return list(struct.unpack(f"<{len(data) // 4}I", data))


class TestCRC32:
    def test_matches_binascii(self):
        expected = binascii.crc32(crc32._input_data()) & 0xFFFFFFFF
        assert words_of(crc32.WORKLOAD.reference_output()) == [expected]

    def test_table_spot_values(self):
        table = crc32._crc_table()
        assert table[0] == 0
        assert table[1] == 0x77073096  # well-known IEEE CRC table entry
        assert table[255] == 0x2D02EF8D

    def test_input_deterministic(self):
        assert crc32._input_data() == crc32._input_data()


class TestDijkstra:
    def test_distances_nonnegative_and_source_zero(self):
        matrix = dijkstra._matrix()
        for source in range(4):
            dist = dijkstra._dijkstra(matrix, source)
            assert dist[source] == 0
            assert all(value >= 0 for value in dist)

    def test_ring_guarantees_reachability(self):
        matrix = dijkstra._matrix()
        dist = dijkstra._dijkstra(matrix, 0)
        assert all(value < dijkstra._INF for value in dist)

    def test_triangle_inequality_over_edges(self):
        matrix = dijkstra._matrix()
        dist = dijkstra._dijkstra(matrix, 0)
        for u in range(dijkstra._NODES):
            for v in range(dijkstra._NODES):
                if matrix[u][v]:
                    assert dist[v] <= dist[u] + matrix[u][v]


class TestFFT:
    def test_matches_numpy(self):
        wave = fft._wave()
        rev = fft._bit_reversal()
        re = [wave[rev[i]] for i in range(fft._N)]
        im = [0.0] * fft._N
        fft._fft_reference(re, im)
        ours = np.array(re) + 1j * np.array(im)
        reference = np.fft.fft(np.array(wave))
        assert np.allclose(ours, reference, atol=1e-9)

    def test_bit_reversal_is_an_involution(self):
        rev = fft._bit_reversal()
        assert all(rev[rev[i]] == i for i in range(fft._N))

    def test_tone_peaks_visible(self):
        """The synthesized wave's tones show up as spectral peaks."""
        wave = fft._wave()
        spectrum = np.abs(np.fft.fft(np.array(wave)))
        noise_floor = np.median(spectrum[1 : fft._N // 2])
        assert spectrum[1 : fft._N // 2].max() > 10 * noise_floor


class TestJpeg:
    def test_dct_matrix_orthonormal(self):
        c = np.array(jpeg._dct_matrix()).reshape(8, 8)
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_decode_approximates_original(self):
        """Quantization loses detail but the reconstruction must stay close
        to the original image (JPEG's whole premise)."""
        image = jpeg._image()
        errors = []
        for block, quantized in zip(jpeg._blocks(image), jpeg._encoded_blocks()):
            decoded = jpeg._decode_block(quantized)
            errors.extend(abs(a - b) for a, b in zip(block, decoded))
        mean_error = sum(errors) / len(errors)
        assert mean_error < 12.0  # coarse quant table, small blocks

    def test_dc_coefficient_tracks_block_mean(self):
        image = jpeg._image()
        block = next(iter(jpeg._blocks(image)))
        quantized = jpeg._encode_block(block)
        mean_shifted = sum(p - 128 for p in block) / 64
        # DC = 8 * mean / Q[0] (orthonormal DCT), quantized by 16.
        assert quantized[0] == int(mean_shifted * 8 / 16)


class TestQsort:
    def test_checksum_matches_sorted(self):
        output = words_of(qsort.WORKLOAD.reference_output())
        ordered = sorted(qsort._values())
        checksum = 0
        for index, value in enumerate(ordered):
            checksum = (checksum + value * (index + 1)) & 0xFFFFFFFF
        assert output[0] == checksum

    def test_samples_are_nondecreasing(self):
        output = words_of(qsort.WORKLOAD.reference_output())
        samples = output[1:]
        assert samples == sorted(samples)


class TestStringSearch:
    def test_results_match_str_find(self):
        output = words_of(stringsearch.WORKLOAD.reference_output())
        for (sentence, needle), result in zip(stringsearch._pairs(), output):
            expected = sentence.find(needle) & 0xFFFFFFFF
            assert result == expected

    def test_mix_of_hits_and_misses(self):
        output = words_of(stringsearch.WORKLOAD.reference_output())
        hits = sum(1 for value in output if value != 0xFFFFFFFF)
        assert 0 < hits < len(output)


class TestMatMul:
    def test_diagonal_matches_numpy(self):
        a, b = matmul._matrices()
        na = np.array(a).reshape(16, 16)
        nb = np.array(b).reshape(16, 16)
        product = na @ nb
        output = words_of(matmul.WORKLOAD.reference_output())
        for i in range(16):
            quantized = output[i]
            if quantized & 0x80000000:
                quantized -= 1 << 32
            assert quantized == pytest.approx(product[i, i] * 4096.0, abs=1.0)


class TestSusan:
    def test_mask_is_the_standard_37_pixel_disc(self):
        offsets = susan._mask_offsets()
        assert len(offsets) == 37
        assert (0, 0) in offsets
        assert all(dx * dx + dy * dy <= 12 for dx, dy in offsets)

    def test_lut_peak_at_zero_difference(self):
        lut = susan._lut()
        assert lut[256] == 100
        assert lut[0] == 0 and lut[511] == 0
        # Monotone decay away from zero difference.
        assert all(lut[256 + d] >= lut[256 + d + 1] for d in range(0, 255))

    def test_corners_detected_on_test_card(self):
        output = words_of(susan.CORNER_WORKLOAD.reference_output())
        corner_count = output[0]
        assert 5 < corner_count < 150

    def test_edges_detected_on_test_card(self):
        output = words_of(susan.EDGE_WORKLOAD.reference_output())
        edge_count = output[-1]
        assert edge_count > corner_count_lower_bound()

    def test_smoothing_preserves_range(self):
        rows = words_of(susan.SMOOTH_WORKLOAD.reference_output())[:-1]
        # 14 pixels per row, each in [0, 255].
        assert all(0 <= row_sum <= 255 * 14 for row_sum in rows)


def corner_count_lower_bound() -> int:
    output = words_of(susan.CORNER_WORKLOAD.reference_output())
    return output[0]
