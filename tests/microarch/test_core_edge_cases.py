"""Edge-case semantics: FP specials, saturation, prediction, banking."""

from __future__ import annotations

import struct


def emitted(result):
    return list(struct.unpack(f"<{len(result.output) // 4}I", result.output))


def signed(value):
    return value - 0x100000000 if value & 0x80000000 else value


EMIT = """
    movi r7, 3
    syscall
"""


class TestFloatSpecials:
    def test_fdiv_by_zero_gives_infinity(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli  f1, 1.0
    fsub f2, f2, f2          ; 0.0
    fdiv f3, f1, f2          ; +inf
    fcmp f3, f1
    bgt  is_bigger
    movi r0, 0
    b    out
is_bigger:
    movi r0, 1
out:
{EMIT}
{exit0}
""")
        assert emitted(result) == [1]

    def test_zero_over_zero_is_nan_and_unordered(self, run_program, exit0):
        result = run_program(f"""
_start:
    fsub f1, f1, f1
    fdiv f2, f1, f1          ; nan
    fcmp f2, f2
    bne  unordered           ; nan != nan
    movi r0, 0
    b    out
unordered:
    movi r0, 1
out:
{EMIT}
{exit0}
""")
        assert emitted(result) == [1]

    def test_sqrt_of_negative_is_nan(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli   f1, -4.0
    fsqrt f2, f1
    fcvti r0, f2             ; nan converts to 0 (saturating convert)
{EMIT}
{exit0}
""")
        assert emitted(result) == [0]

    def test_fcvti_saturates_at_int32_limits(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli   f1, 1e20
    fcvti r0, f1
{EMIT}
    fli   f2, -1e20
    fcvti r0, f2
{EMIT}
{exit0}
""")
        words = emitted(result)
        assert signed(words[0]) == 2**31 - 1
        assert signed(words[1]) == -(2**31)


class TestBranchPrediction:
    def test_backward_loop_predicted_well(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 2000
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bgt  loop                ; backward: predicted taken
{exit0}
""")
        counters = result.counters
        # Only the final not-taken iteration mispredicts.
        assert counters.branch_misses <= counters.branches * 0.05

    def test_forward_taken_branches_mispredict(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 500
loop:
    cmpi r1, -1
    beq  never               ; forward not-taken: predicted correctly
    cmpi r1, 0
    bgt  skip                ; forward TAKEN: mispredicted every time
    b    done
skip:
    subi r1, r1, 1
    b    loop
never:
    nop
done:
{exit0}
""")
        counters = result.counters
        assert counters.branch_misses >= 450


class TestImmediateExtremes:
    def test_movi_extremes(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r0, 32767
{EMIT}
    movi r0, -32768
{EMIT}
{exit0}
""")
        words = emitted(result)
        assert words[0] == 32767 and signed(words[1]) == -32768

    def test_li_full_range(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r0, 0xffffffff
{EMIT}
    li   r0, 0x80000000
{EMIT}
{exit0}
""")
        assert emitted(result) == [0xFFFFFFFF, 0x80000000]

    def test_mul_wraps(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0x10001
    mul  r0, r1, r1
{EMIT}
{exit0}
""")
        assert emitted(result) == [(0x10001 * 0x10001) & 0xFFFFFFFF]

    def test_div_minint_by_minus_one_wraps(self, run_program, exit0):
        """INT_MIN / -1 overflows; our machine wraps to INT_MIN (no trap)."""
        result = run_program(f"""
_start:
    li   r1, 0x80000000
    movi r2, -1
    div  r0, r1, r2
{EMIT}
{exit0}
""")
        assert emitted(result) == [0x80000000]
