"""Property: translation is invisible on randomly generated programs.

Hypothesis assembles short random bodies inside hot loops (so the
basic-block translator actually fires: blocks only compile after
``HEAT_THRESHOLD`` executions), runs each program interpreter-only and
translator-enabled on identical machines, and asserts the two runs are
indistinguishable: same architectural digest, same full-system digest,
same cycle count, and same performance counters.  Bodies deliberately
include faultable instructions - division by a possibly-zero register
and occasionally misaligned word accesses - so the translator's
exception flush path is exercised, not just the happy path.

Three program/machine shapes are covered:

- straight-line bodies in one hot loop (the original property);
- nested loops with FLD/FST double-word traffic - taken backward
  branches inside a translated region are exactly what loop superblocks
  chain across, and the fp paths ride the double-word inline fast path;
- data-side taint armed mid-run (a real bit flipped into L1D / L2 /
  DTLB / REGFILE plus the taint probes a lifetime-event campaign
  installs): the translated engine must replay probe notifications
  bit-identically, down to the cycle stamps in the lifetime-event
  stream.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.injection.components import (
    Component,
    component_bits,
    component_target,
)
from repro.isa.assembler import Assembler
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.digest import arch_digest, system_digest
from repro.microarch.system import PerfCounters, System
from repro.microarch.translate import attach_translator
from repro.observability.events import EV_FLIP, FaultLifetime
from repro.observability.taint import install_taint

#: r0-r9 are scratch; r10 is the loop counter, r11 the data-buffer base.
SCRATCH = st.integers(0, 9)

ALU3 = ("add", "sub", "mul", "and", "orr", "eor", "lsl", "lsr", "asr", "mov")
ALUI = ("addi", "subi", "muli", "andi", "orri", "eori")
SHIFTI = ("lsli", "lsri", "asri")


@st.composite
def _instruction(draw) -> str:
    kind = draw(
        st.sampled_from(
            ["alu3", "alui", "shifti", "movi", "cmp", "cmpi", "divmod"]
            + ["load", "store"] * 2
        )
    )
    rd, rs1, rs2 = draw(SCRATCH), draw(SCRATCH), draw(SCRATCH)
    if kind == "alu3":
        op = draw(st.sampled_from(ALU3))
        if op == "mov":
            return f"mov r{rd}, r{rs1}"
        return f"{op} r{rd}, r{rs1}, r{rs2}"
    if kind == "alui":
        return f"{draw(st.sampled_from(ALUI))} r{rd}, r{rs1}, {draw(st.integers(0, 255))}"
    if kind == "shifti":
        return f"{draw(st.sampled_from(SHIFTI))} r{rd}, r{rs1}, {draw(st.integers(0, 15))}"
    if kind == "movi":
        return f"movi r{rd}, {draw(st.integers(0, 32767))}"
    if kind == "cmp":
        return f"cmp r{rs1}, r{rs2}"
    if kind == "cmpi":
        return f"cmpi r{rs1}, {draw(st.integers(0, 255))}"
    if kind == "divmod":
        # rs2 may hold zero: both executions must take the same
        # ArithmeticFault path into the kernel.
        return f"{draw(st.sampled_from(('div', 'mod')))} r{rd}, r{rs1}, r{rs2}"
    if kind == "load":
        if draw(st.booleans()):
            return f"ldw r{rd}, [r11, {draw(st.integers(0, 62)) * 4}]"
        return f"ldb r{rd}, [r11, {draw(st.integers(0, 255))}]"
    if draw(st.booleans()):
        # Rarely misaligned: exercises the AlignmentFault flush path.
        offset = draw(st.integers(0, 62)) * 4 if draw(st.integers(0, 9)) else 2
        return f"stw r{rd}, [r11, {offset}]"
    return f"stb r{rd}, [r11, {draw(st.integers(0, 255))}]"


@st.composite
def _program(draw) -> str:
    seeds = [
        f"    movi r{reg}, {draw(st.integers(0, 32767))}" for reg in range(10)
    ]
    body = [f"    {draw(_instruction())}" for _ in range(draw(st.integers(1, 16)))]
    iterations = draw(st.integers(24, 48))
    lines = [
        "_start:",
        "    la   r11, buf",
        *seeds,
        f"    movi r10, {iterations}",
        "loop:",
        *body,
        "    subi r10, r10, 1",
        "    cmpi r10, 0",
        "    bne  loop",
        "    movi r0, 0",
        "    movi r7, 0",
        "    syscall",
        "    .data",
        "buf: .space 256",
    ]
    return "\n".join(lines) + "\n"


#: Nested-loop scratch: r8 is spare, r9 the inner counter, r10 the
#: outer counter, r11 the int buffer base, r12 the fp buffer base (and
#: the assembler's ``la`` scratch, so it is written last).
NESTED_SCRATCH = st.integers(0, 7)


@st.composite
def _nested_instruction(draw) -> str:
    kind = draw(
        st.sampled_from(
            ["alu3", "alui", "movi", "load", "store"]
            + ["fld", "fst", "fp3"] * 2
        )
    )
    rd, rs1, rs2 = draw(NESTED_SCRATCH), draw(NESTED_SCRATCH), draw(NESTED_SCRATCH)
    fd, fs1, fs2 = draw(st.integers(0, 3)), draw(st.integers(0, 3)), draw(st.integers(0, 3))
    if kind == "alu3":
        op = draw(st.sampled_from(ALU3))
        if op == "mov":
            return f"mov r{rd}, r{rs1}"
        return f"{op} r{rd}, r{rs1}, r{rs2}"
    if kind == "alui":
        return f"{draw(st.sampled_from(ALUI))} r{rd}, r{rs1}, {draw(st.integers(0, 255))}"
    if kind == "movi":
        return f"movi r{rd}, {draw(st.integers(0, 32767))}"
    if kind == "load":
        return f"ldw r{rd}, [r11, {draw(st.integers(0, 62)) * 4}]"
    if kind == "store":
        return f"stw r{rd}, [r11, {draw(st.integers(0, 62)) * 4}]"
    if kind == "fld":
        return f"fld f{fd}, [r12, {draw(st.integers(0, 7)) * 8}]"
    if kind == "fst":
        return f"fst f{fd}, [r12, {draw(st.integers(0, 7)) * 8}]"
    op = draw(st.sampled_from(("fadd", "fsub", "fmul")))
    return f"{op} f{fd}, f{fs1}, f{fs2}"


@st.composite
def _nested_program(draw) -> str:
    """Two nested hot loops with int + double-word fp traffic."""
    seeds = [
        f"    movi r{reg}, {draw(st.integers(0, 32767))}" for reg in range(8)
    ]
    inner_body = [
        f"    {draw(_nested_instruction())}"
        for _ in range(draw(st.integers(1, 8)))
    ]
    outer_tail = [
        f"    {draw(_nested_instruction())}"
        for _ in range(draw(st.integers(0, 3)))
    ]
    lines = [
        "_start:",
        "    la   r11, buf",
        "    la   r12, fbuf",
        *seeds,
        f"    movi r10, {draw(st.integers(6, 12))}",
        "outer:",
        f"    movi r9, {draw(st.integers(3, 9))}",
        "inner:",
        *inner_body,
        "    subi r9, r9, 1",
        "    cmpi r9, 0",
        "    bne  inner",
        *outer_tail,
        "    subi r10, r10, 1",
        "    cmpi r10, 0",
        "    bne  outer",
        "    movi r0, 0",
        "    movi r7, 0",
        "    syscall",
        "    .data",
        "buf: .space 256",
        "fbuf: .space 64",
    ]
    return "\n".join(lines) + "\n"


def _run(source: str, translate: bool):
    assembler = Assembler(
        text_base=DEFAULT_LAYOUT.user_text_base,
        data_base=DEFAULT_LAYOUT.user_data_base,
    )
    program = assembler.assemble(source, entry="_start")
    system = System(program, config=SCALED_A9_CONFIG)
    if translate:
        assert attach_translator(system) is not None
    result = system.run(max_cycles=500_000)
    return system, result


@settings(max_examples=40, deadline=None)
@given(source=_program())
def test_translator_is_invisible(source):
    interp_system, interp_result = _run(source, translate=False)
    trans_system, trans_result = _run(source, translate=True)

    assert trans_result.cycles == interp_result.cycles
    assert trans_result.exited_cleanly == interp_result.exited_cleanly
    for name in PerfCounters.__slots__:
        assert getattr(trans_result.counters, name) == getattr(
            interp_result.counters, name
        ), name
    for unit in ("l1i", "l1d", "l2", "itlb", "dtlb"):
        a, b = getattr(interp_system, unit), getattr(trans_system, unit)
        assert (a.accesses, a.misses) == (b.accesses, b.misses), unit
    assert arch_digest(trans_system) == arch_digest(interp_system)
    assert system_digest(trans_system) == system_digest(interp_system)


def _assert_indistinguishable(interp, trans):
    interp_system, interp_result = interp
    trans_system, trans_result = trans
    assert trans_result.cycles == interp_result.cycles
    assert trans_result.exited_cleanly == interp_result.exited_cleanly
    for name in PerfCounters.__slots__:
        assert getattr(trans_result.counters, name) == getattr(
            interp_result.counters, name
        ), name
    for unit in ("l1i", "l1d", "l2", "itlb", "dtlb"):
        a, b = getattr(interp_system, unit), getattr(trans_system, unit)
        assert (a.accesses, a.misses) == (b.accesses, b.misses), unit
    assert arch_digest(trans_system) == arch_digest(interp_system)
    assert system_digest(trans_system) == system_digest(interp_system)


@settings(max_examples=25, deadline=None)
@given(source=_nested_program())
def test_translator_is_invisible_on_nested_loops(source):
    _assert_indistinguishable(
        _run(source, translate=False), _run(source, translate=True)
    )


#: Data-side components a lifetime-event campaign arms taint probes on.
TAINTABLE = (
    Component.L1D,
    Component.L2,
    Component.DTLB,
    Component.REGFILE,
)


def _run_tainted(source, translate, component, bit_seed, flip_cycle):
    """One run with a mid-flight flip + taint probes, injector-style."""
    assembler = Assembler(
        text_base=DEFAULT_LAYOUT.user_text_base,
        data_base=DEFAULT_LAYOUT.user_data_base,
    )
    program = assembler.assemble(source, entry="_start")
    system = System(program, config=SCALED_A9_CONFIG)
    if translate:
        assert attach_translator(system) is not None
    lifetime = FaultLifetime(system.core)
    bit = bit_seed % component_bits(SCALED_A9_CONFIG, component)

    def flip():
        component_target(system, component).flip_bit(bit)
        lifetime.event(EV_FLIP, component.name)
        install_taint(system, component, [bit], lifetime)

    result = system.run(max_cycles=500_000, events=[(flip_cycle, flip)])
    return system, result, lifetime.to_payload()


@settings(max_examples=25, deadline=None)
@given(
    source=_nested_program(),
    component=st.sampled_from(TAINTABLE),
    bit_seed=st.integers(0, 2**20),
    flip_cycle=st.integers(200, 3000),
)
def test_translator_is_invisible_under_data_taint(
    source, component, bit_seed, flip_cycle
):
    interp = _run_tainted(source, False, component, bit_seed, flip_cycle)
    trans = _run_tainted(source, True, component, bit_seed, flip_cycle)
    _assert_indistinguishable(interp[:2], trans[:2])
    assert trans[2] == interp[2], "lifetime-event streams differ"
