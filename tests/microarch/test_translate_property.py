"""Property: translation is invisible on randomly generated programs.

Hypothesis assembles short random straight-line bodies inside a hot loop
(so the basic-block translator actually fires: blocks only compile after
``HEAT_THRESHOLD`` executions), runs each program interpreter-only and
translator-enabled on identical machines, and asserts the two runs are
indistinguishable: same architectural digest, same full-system digest,
same cycle count, and same performance counters.  Bodies deliberately
include faultable instructions - division by a possibly-zero register
and occasionally misaligned word accesses - so the translator's
exception flush path is exercised, not just the happy path.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import Assembler
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.digest import arch_digest, system_digest
from repro.microarch.system import PerfCounters, System
from repro.microarch.translate import attach_translator

#: r0-r9 are scratch; r10 is the loop counter, r11 the data-buffer base.
SCRATCH = st.integers(0, 9)

ALU3 = ("add", "sub", "mul", "and", "orr", "eor", "lsl", "lsr", "asr", "mov")
ALUI = ("addi", "subi", "muli", "andi", "orri", "eori")
SHIFTI = ("lsli", "lsri", "asri")


@st.composite
def _instruction(draw) -> str:
    kind = draw(
        st.sampled_from(
            ["alu3", "alui", "shifti", "movi", "cmp", "cmpi", "divmod"]
            + ["load", "store"] * 2
        )
    )
    rd, rs1, rs2 = draw(SCRATCH), draw(SCRATCH), draw(SCRATCH)
    if kind == "alu3":
        op = draw(st.sampled_from(ALU3))
        if op == "mov":
            return f"mov r{rd}, r{rs1}"
        return f"{op} r{rd}, r{rs1}, r{rs2}"
    if kind == "alui":
        return f"{draw(st.sampled_from(ALUI))} r{rd}, r{rs1}, {draw(st.integers(0, 255))}"
    if kind == "shifti":
        return f"{draw(st.sampled_from(SHIFTI))} r{rd}, r{rs1}, {draw(st.integers(0, 15))}"
    if kind == "movi":
        return f"movi r{rd}, {draw(st.integers(0, 32767))}"
    if kind == "cmp":
        return f"cmp r{rs1}, r{rs2}"
    if kind == "cmpi":
        return f"cmpi r{rs1}, {draw(st.integers(0, 255))}"
    if kind == "divmod":
        # rs2 may hold zero: both executions must take the same
        # ArithmeticFault path into the kernel.
        return f"{draw(st.sampled_from(('div', 'mod')))} r{rd}, r{rs1}, r{rs2}"
    if kind == "load":
        if draw(st.booleans()):
            return f"ldw r{rd}, [r11, {draw(st.integers(0, 62)) * 4}]"
        return f"ldb r{rd}, [r11, {draw(st.integers(0, 255))}]"
    if draw(st.booleans()):
        # Rarely misaligned: exercises the AlignmentFault flush path.
        offset = draw(st.integers(0, 62)) * 4 if draw(st.integers(0, 9)) else 2
        return f"stw r{rd}, [r11, {offset}]"
    return f"stb r{rd}, [r11, {draw(st.integers(0, 255))}]"


@st.composite
def _program(draw) -> str:
    seeds = [
        f"    movi r{reg}, {draw(st.integers(0, 32767))}" for reg in range(10)
    ]
    body = [f"    {draw(_instruction())}" for _ in range(draw(st.integers(1, 16)))]
    iterations = draw(st.integers(24, 48))
    lines = [
        "_start:",
        "    la   r11, buf",
        *seeds,
        f"    movi r10, {iterations}",
        "loop:",
        *body,
        "    subi r10, r10, 1",
        "    cmpi r10, 0",
        "    bne  loop",
        "    movi r0, 0",
        "    movi r7, 0",
        "    syscall",
        "    .data",
        "buf: .space 256",
    ]
    return "\n".join(lines) + "\n"


def _run(source: str, translate: bool):
    assembler = Assembler(
        text_base=DEFAULT_LAYOUT.user_text_base,
        data_base=DEFAULT_LAYOUT.user_data_base,
    )
    program = assembler.assemble(source, entry="_start")
    system = System(program, config=SCALED_A9_CONFIG)
    if translate:
        assert attach_translator(system) is not None
    result = system.run(max_cycles=500_000)
    return system, result


@settings(max_examples=40, deadline=None)
@given(source=_program())
def test_translator_is_invisible(source):
    interp_system, interp_result = _run(source, translate=False)
    trans_system, trans_result = _run(source, translate=True)

    assert trans_result.cycles == interp_result.cycles
    assert trans_result.exited_cleanly == interp_result.exited_cleanly
    for name in PerfCounters.__slots__:
        assert getattr(trans_result.counters, name) == getattr(
            interp_result.counters, name
        ), name
    for unit in ("l1i", "l1d", "l2", "itlb", "dtlb"):
        a, b = getattr(interp_system, unit), getattr(trans_system, unit)
        assert (a.accesses, a.misses) == (b.accesses, b.misses), unit
    assert arch_digest(trans_system) == arch_digest(interp_system)
    assert system_digest(trans_system) == system_digest(interp_system)
