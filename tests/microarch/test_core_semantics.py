"""Instruction semantics, exercised through small assembled programs.

Each program computes values and emits them with the write_word syscall;
assertions compare against Python-computed expectations.  This validates
the full stack: assembler -> loader -> MMU -> caches -> decoder -> ALU ->
kernel syscall path.
"""

from __future__ import annotations

import struct

import pytest

EMIT = """
    movi r7, 3
    syscall
"""


def emitted_words(result) -> list[int]:
    data = result.output
    return list(struct.unpack(f"<{len(data) // 4}I", data))


def signed(value: int) -> int:
    return value - 0x100000000 if value & 0x80000000 else value


class TestIntegerALU:
    def test_add_sub_mul(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 1000
    movi r2, 37
    add  r0, r1, r2
{EMIT}
    sub  r0, r1, r2
{EMIT}
    mul  r0, r1, r2
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [1037, 963, 37000]

    def test_add_wraps_32_bits(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0xffffffff
    movi r2, 2
    add  r0, r1, r2
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [1]

    def test_div_mod_signed(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, -17
    movi r2, 5
    div  r0, r1, r2
{EMIT}
    mod  r0, r1, r2
{EMIT}
{exit0}
""")
        words = [signed(w) for w in emitted_words(result)]
        assert words == [-3, -2]  # C truncation semantics

    def test_logical_ops(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0xf0f0
    li   r2, 0x0ff0
    and  r0, r1, r2
{EMIT}
    orr  r0, r1, r2
{EMIT}
    eor  r0, r1, r2
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [0x0FF0 & 0xF0F0, 0xFFF0, 0xF0F0 ^ 0x0FF0]

    def test_shifts(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, -8
    movi r2, 1
    lsl  r0, r1, r2
{EMIT}
    lsr  r0, r1, r2
{EMIT}
    asr  r0, r1, r2
{EMIT}
    lsli r0, r1, 4
{EMIT}
    asri r0, r1, 2
{EMIT}
{exit0}
""")
        value = 0xFFFFFFF8
        expected = [
            (value << 1) & 0xFFFFFFFF,
            value >> 1,
            (signed(value) >> 1) & 0xFFFFFFFF,
            (value << 4) & 0xFFFFFFFF,
            (signed(value) >> 2) & 0xFFFFFFFF,
        ]
        assert emitted_words(result) == expected

    def test_shift_amount_masked_to_5_bits(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 1
    movi r2, 33
    lsl  r0, r1, r2
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [2]  # 33 & 31 == 1

    def test_movhi_orri_build_constant(self, run_program, exit0):
        result = run_program(f"""
_start:
    movhi r0, 0x1234
    orri  r0, r0, 0x5678
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [0x12345678]

    def test_mov_and_movi_negative(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, -42
    mov  r0, r1
{EMIT}
{exit0}
""")
        assert signed(emitted_words(result)[0]) == -42


class TestMemoryOps:
    def test_word_store_load(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, buf
    li   r2, 0xcafebabe
    stw  r2, [r1, 4]
    ldw  r0, [r1, 4]
{EMIT}
{exit0}
    .data
buf: .space 16
""")
        assert emitted_words(result) == [0xCAFEBABE]

    def test_byte_store_load_zero_extends(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, buf
    movi r2, -1
    stb  r2, [r1]
    ldb  r0, [r1]
{EMIT}
{exit0}
    .data
buf: .space 4
""")
        assert emitted_words(result) == [0xFF]

    def test_little_endian_layout(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, buf
    li   r2, 0x11223344
    stw  r2, [r1]
    ldb  r0, [r1]
{EMIT}
    ldb  r0, [r1, 3]
{EMIT}
{exit0}
    .data
buf: .space 4
""")
        assert emitted_words(result) == [0x44, 0x11]

    def test_negative_offset(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, buf
    addi r1, r1, 8
    movi r2, 77
    stw  r2, [r1, -8]
    la   r3, buf
    ldw  r0, [r3]
{EMIT}
{exit0}
    .data
buf: .space 16
""")
        assert emitted_words(result) == [77]


class TestControlFlow:
    def test_conditional_branches(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r9, 0
    movi r1, 5
    movi r2, 7
    cmp  r1, r2
    blt  t1
    b    f1
t1: orri r9, r9, 1
f1: cmp  r2, r1
    bgt  t2
    b    f2
t2: orri r9, r9, 2
f2: cmp  r1, r1
    beq  t3
    b    f3
t3: orri r9, r9, 4
f3: cmp  r1, r2
    bne  t4
    b    f4
t4: orri r9, r9, 8
f4: cmp  r1, r1
    ble  t5
    b    f5
t5: orri r9, r9, 16
f5: cmp  r1, r1
    bge  t6
    b    f6
t6: orri r9, r9, 32
f6: mov  r0, r9
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [0b111111]

    def test_call_and_return(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 20
    call double_it
    mov  r0, r1
{EMIT}
{exit0}
double_it:
    add  r1, r1, r1
    ret
""")
        assert emitted_words(result) == [40]

    def test_nested_calls_with_stack(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 3
    call fact
    mov  r0, r1
{EMIT}
{exit0}
fact:                        ; r1 = n -> r1 = n!
    cmpi r1, 1
    ble  fact_base
    push lr
    push r1
    subi r1, r1, 1
    call fact
    pop  r2
    mul  r1, r1, r2
    pop  lr
fact_base:
    ret
""")
        assert emitted_words(result) == [6]

    def test_indirect_branch(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, target
    br   r1
    movi r0, 1           ; skipped
{EMIT}
target:
    movi r0, 99
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [99]

    def test_blr_links(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, fn
    blr  r1
    mov  r0, r2
{EMIT}
{exit0}
fn:
    movi r2, 55
    ret
""")
        assert emitted_words(result) == [55]


class TestFloatingPoint:
    def test_arith(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli  f1, 2.5
    fli  f2, 4.0
    fadd f3, f1, f2
    fmul f4, f1, f2
    fsub f5, f2, f1
    fdiv f6, f2, f1
    fli  f0, 1000.0
    fmul f3, f3, f0
    fcvti r0, f3
{EMIT}
    fmul f4, f4, f0
    fcvti r0, f4
{EMIT}
    fmul f5, f5, f0
    fcvti r0, f5
{EMIT}
    fmul f6, f6, f0
    fcvti r0, f6
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [6500, 10000, 1500, 1600]

    def test_sqrt_and_neg(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli   f1, 16.0
    fsqrt f2, f1
    fcvti r0, f2
{EMIT}
    fneg  f3, f2
    fcvti r0, f3
{EMIT}
{exit0}
""")
        words = emitted_words(result)
        assert words[0] == 4 and signed(words[1]) == -4

    def test_fcvt_round_trip(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi  r1, -123
    fcvt  f1, r1
    fcvti r0, f1
{EMIT}
{exit0}
""")
        assert signed(emitted_words(result)[0]) == -123

    def test_fcvti_truncates_toward_zero(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli   f1, 2.9
    fcvti r0, f1
{EMIT}
    fli   f2, -2.9
    fcvti r0, f2
{EMIT}
{exit0}
""")
        words = emitted_words(result)
        assert words[0] == 2 and signed(words[1]) == -2

    def test_fcmp_branches(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli  f1, 1.0
    fli  f2, 2.0
    movi r9, 0
    fcmp f1, f2
    blt  less
    b    after
less:
    movi r9, 1
after:
    mov  r0, r9
{EMIT}
{exit0}
""")
        assert emitted_words(result) == [1]

    def test_memory_doubles(self, run_program, exit0):
        result = run_program(f"""
_start:
    fli  f1, 6.25
    la   r1, buf
    fst  f1, [r1]
    fld  f2, [r1]
    fli  f3, 4.0
    fmul f2, f2, f3
    fcvti r0, f2
{EMIT}
{exit0}
    .data
    .align 8
buf: .space 8
""")
        assert emitted_words(result) == [25]
