"""Snapshot/restore: checkpoint-accelerated runs must be bit-identical."""

from __future__ import annotations

import pytest

from repro.injection.campaign import (
    record_golden_snapshots,
    run_golden,
    run_single_injection,
)
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.digest import system_digest
from repro.microarch.snapshot import (
    DeltaRestorer,
    SystemSnapshot,
    best_snapshot,
    deserialize_snapshots,
    record_snapshots,
    run_with_captures,
    serialize_snapshots,
)
from repro.microarch.system import System
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def workload():
    return get_workload("Susan E")


@pytest.fixture(scope="module")
def golden(workload):
    return run_golden(workload, SCALED_A9_CONFIG)


@pytest.fixture(scope="module")
def snapshots(workload, golden):
    return record_golden_snapshots(workload, SCALED_A9_CONFIG, golden, count=4)


class TestSnapshotMechanics:
    def test_snapshots_recorded_at_requested_cycles(self, snapshots, golden):
        assert len(snapshots) == 4
        assert all(s.cycle <= golden.cycles for s in snapshots)
        assert sorted(s.cycle for s in snapshots) == [s.cycle for s in snapshots]

    def test_best_snapshot_selection(self, snapshots):
        cycles = [s.cycle for s in snapshots]
        assert best_snapshot(snapshots, cycles[0] - 1) is None
        assert best_snapshot(snapshots, cycles[0]) is snapshots[0]
        assert best_snapshot(snapshots, cycles[-1] + 10) is snapshots[-1]

    def test_restored_run_completes_identically(self, workload, golden, snapshots):
        """Restore mid-run and finish: output and cycle count match golden."""
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshots[1].restore(system)
        result = system.run(max_cycles=golden.cycles * 3)
        assert result.exited_cleanly
        assert result.output == golden.output
        assert result.cycles == golden.cycles

    def test_snapshot_of_snapshot_is_stable(self, workload, snapshots):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshots[0].restore(system)
        recopy = SystemSnapshot(system)
        assert recopy.cycle == snapshots[0].cycle


class TestSnapshotSerialization:
    """Pickle round-trip fidelity: shipped snapshots must restore bit-exact."""

    def test_round_trip_preserves_every_field(self, snapshots):
        clones = deserialize_snapshots(serialize_snapshots(snapshots))
        assert len(clones) == len(snapshots)
        for original, clone in zip(snapshots, clones):
            assert clone is not original
            assert vars(clone) == vars(original)

    def test_restored_clone_completes_identically(self, workload, golden, snapshots):
        """A deserialized snapshot drives the machine exactly like the original."""
        clone = deserialize_snapshots(serialize_snapshots(snapshots))[2]
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        clone.restore(system)
        result = system.run(max_cycles=golden.cycles * 3)
        assert result.exited_cleanly
        assert result.output == golden.output
        assert result.cycles == golden.cycles

    def test_restore_from_clone_matches_restore_from_original(
        self, workload, snapshots
    ):
        clone = deserialize_snapshots(serialize_snapshots(snapshots))[0]
        a = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        b = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshots[0].restore(a)
        clone.restore(b)
        assert vars(SystemSnapshot(a)) == vars(SystemSnapshot(b))

    def test_deserialize_rejects_foreign_payloads(self):
        import pickle

        with pytest.raises(TypeError):
            deserialize_snapshots(pickle.dumps("not a snapshot list"))
        with pytest.raises(TypeError):
            deserialize_snapshots(pickle.dumps([object()]))


class TestRestoreDigestFidelity:
    """Restore-then-digest must reproduce the capture-time digest.

    Guards the compare-and-skip sweep in :meth:`SystemSnapshot.restore`
    and the page-granular :class:`DeltaRestorer`: any segment either one
    wrongly skips (or any stale memoized page digest) shows up as a
    digest mismatch here.
    """

    @pytest.fixture(scope="class")
    def captures(self, workload, golden):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        pairs: list[tuple[SystemSnapshot, bytes]] = []

        def capture():
            pairs.append((SystemSnapshot(system), system_digest(system)))

        cycles = [golden.cycles // 4, golden.cycles // 2, 3 * golden.cycles // 4]
        run_with_captures(system, [(cycle, capture) for cycle in cycles])
        return pairs

    def test_full_restore_reproduces_capture_digest(self, workload, captures):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        for snapshot, digest in captures:
            snapshot.restore(system)
            assert system_digest(system) == digest
            # Dirty the machine before the next restore so the
            # compare-and-skip sweep has real work to (not) skip.
            system.run(max_cycles=snapshot.cycle + 2000)

    def test_delta_restore_reproduces_capture_digest(self, workload, captures):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        system.memory.enable_digest_cache()
        restorer = DeltaRestorer(system)
        # Revisit snapshots out of order: exercises the dirty-page path
        # (same snapshot twice) and the memoized snapshot-to-snapshot
        # page-diff path (switching between snapshots).
        for index in (0, 0, 1, 2, 0, 2):
            snapshot, digest = captures[index]
            restorer.restore(snapshot)
            assert system_digest(system) == digest
            system.run(max_cycles=snapshot.cycle + 2000)

    def test_delta_restore_matches_full_restore(self, workload, captures):
        snapshot, _digest = captures[1]
        full = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        delta = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        restorer = DeltaRestorer(delta)
        for system in (full, delta):
            system.run(max_cycles=3000)
        snapshot.restore(full)
        restorer.restore(snapshot)
        assert system_digest(delta) == system_digest(full)


class TestInjectionEquivalence:
    @pytest.mark.parametrize(
        "component", [Component.L1D, Component.L1I, Component.REGFILE, Component.DTLB]
    )
    def test_checkpointed_injection_matches_full_run(
        self, workload, golden, snapshots, component
    ):
        faults = generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=3,
            seed=11,
        )
        for fault in faults:
            full = run_single_injection(workload, fault, SCALED_A9_CONFIG, golden)
            fast = run_single_injection(
                workload, fault, SCALED_A9_CONFIG, golden, snapshots=snapshots
            )
            assert full == fast, f"divergence for {fault}"
