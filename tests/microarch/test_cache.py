"""Cache model: hits/misses, LRU, write-back, injection, inspection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InjectionError
from repro.microarch.cache import Cache
from repro.microarch.config import CacheGeometry
from repro.microarch.memory import MainMemory

GEOMETRY = CacheGeometry(size=1024, assoc=2, line_size=32, hit_latency=1)


@pytest.fixture
def memory():
    mem = MainMemory(64 * 1024, latency=10)
    mem.poke(0, bytes(range(256)) * 256)
    return mem


@pytest.fixture
def cache(memory):
    return Cache("T", GEOMETRY, memory)


class TestBasics:
    def test_miss_then_hit(self, cache):
        _data, latency = cache.read(0x100, 4)
        assert latency >= 10  # went to memory
        assert cache.misses == 1
        _data, latency = cache.read(0x104, 4)  # same line
        assert latency == GEOMETRY.hit_latency
        assert cache.misses == 1
        assert cache.accesses == 2

    def test_read_returns_memory_content(self, cache, memory):
        data, _ = cache.read(0x40, 8)
        assert data == memory.peek(0x40, 8)

    def test_write_allocate_and_read_back(self, cache):
        cache.write(0x200, b"\xde\xad\xbe\xef")
        data, _ = cache.read(0x200, 4)
        assert data == b"\xde\xad\xbe\xef"

    def test_write_back_is_lazy(self, cache, memory):
        original = memory.peek(0x200, 4)
        cache.write(0x200, b"\xde\xad\xbe\xef")
        assert memory.peek(0x200, 4) == original  # not written through

    def test_flush_writes_back_dirty_lines(self, cache, memory):
        cache.write(0x200, b"\xde\xad\xbe\xef")
        cache.flush()
        assert memory.peek(0x200, 4) == b"\xde\xad\xbe\xef"

    def test_dirty_eviction_writes_back(self, cache, memory):
        n_sets = GEOMETRY.n_sets
        line = GEOMETRY.line_size
        set_span = n_sets * line  # addresses mapping to the same set
        cache.write(0x0, b"\x11\x22\x33\x44")
        # Evict by touching assoc more lines in the same set.
        for way in range(1, GEOMETRY.assoc + 1):
            cache.read(way * set_span, 4)
        assert memory.peek(0, 4) == b"\x11\x22\x33\x44"

    def test_clean_eviction_discards_silently(self, cache, memory):
        original = memory.peek(0, 4)
        cache.read(0, 4)
        set_span = GEOMETRY.n_sets * GEOMETRY.line_size
        for way in range(1, GEOMETRY.assoc + 1):
            cache.read(way * set_span, 4)
        assert memory.peek(0, 4) == original

    def test_lru_victim_selection(self, cache):
        set_span = GEOMETRY.n_sets * GEOMETRY.line_size
        cache.read(0 * set_span, 4)      # way A
        cache.read(1 * set_span, 4)      # way B
        cache.read(0 * set_span, 4)      # A is now MRU
        cache.read(2 * set_span, 4)      # evicts B
        misses_before = cache.misses
        cache.read(0 * set_span, 4)      # A still resident
        assert cache.misses == misses_before
        cache.read(1 * set_span, 4)      # B was evicted
        assert cache.misses == misses_before + 1

    def test_invalidate_all(self, cache):
        cache.read(0, 4)
        cache.invalidate_all()
        assert cache.occupancy() == 0.0

    def test_occupancy(self, cache):
        assert cache.occupancy() == 0.0
        cache.read(0, 4)
        assert cache.occupancy() == pytest.approx(1 / GEOMETRY.n_lines)

    def test_prefill(self, cache):
        for paddr in range(0, GEOMETRY.size, GEOMETRY.line_size):
            cache.prefill(paddr)
        assert cache.occupancy() == 1.0


class TestPeek:
    def test_peek_sees_cached_dirty_data(self, cache):
        cache.write(0x80, b"\xaa\xbb")
        assert cache.peek(0x80, 2) == b"\xaa\xbb"

    def test_peek_falls_through_to_memory(self, cache, memory):
        assert cache.peek(0x300, 4) == memory.peek(0x300, 4)

    def test_peek_does_not_change_state(self, cache):
        cache.peek(0x300, 4)
        assert cache.accesses == 0
        assert cache.occupancy() == 0.0


class TestInjection:
    def test_data_bits(self, cache):
        assert cache.data_bits == GEOMETRY.size * 8

    def test_locate_bit_round_trip(self, cache):
        for bit_index in (0, 7, 8, 255, cache.data_bits - 1):
            set_index, way, byte, bit = cache.locate_bit(bit_index)
            assert 0 <= set_index < GEOMETRY.n_sets
            assert 0 <= way < GEOMETRY.assoc
            assert 0 <= byte < GEOMETRY.line_size
            assert 0 <= bit < 8

    def test_locate_bit_out_of_range(self, cache):
        with pytest.raises(InjectionError):
            cache.locate_bit(cache.data_bits)
        with pytest.raises(InjectionError):
            cache.locate_bit(-1)

    def test_flip_bit_on_invalid_line_returns_false(self, cache):
        assert cache.flip_bit(0) is False

    def test_flip_bit_corrupts_subsequent_read(self, cache):
        cache.write(0x0, bytes([0x00] * 4))
        # Find the bit index of the line now holding address 0.
        for bit_index in range(cache.data_bits):
            line = cache.line_at(bit_index)
            if line.valid and line.tag == 0:
                break
        assert cache.flip_bit(bit_index) is True
        data, _ = cache.read(0, 4)
        assert data != bytes(4) or bit_index >= 32  # flipped inside the word

    def test_double_flip_restores(self, cache):
        cache.write(0x0, b"\x12\x34\x56\x78")
        cache.flip_bit(5)
        cache.flip_bit(5)
        data, _ = cache.read(0, 4)
        assert data == b"\x12\x34\x56\x78"

    def test_cluster_dead_all_invalid(self, cache):
        """A cold cache is all invalid lines: every cluster is dead."""
        assert cache.cluster_dead(0, 1)
        assert cache.cluster_dead(0, 4)
        assert cache.cluster_dead(cache.data_bits - 1, 2)  # wraps

    def test_cluster_dead_false_on_valid_line(self, cache):
        cache.read(0x100, 4)
        bit = next(
            index for index in range(cache.data_bits)
            if cache.line_at(index).valid
        )
        assert not cache.cluster_dead(bit, 1)

    def test_cluster_straddling_valid_line_is_live(self, cache):
        """A cluster is dead only if EVERY bit lands in an invalid line.

        Regression for the multi-bit fault model: lines 0 (set 0, way 0)
        and 1 (set 0, way 1) are adjacent in flat bit order; with line 0
        invalid and line 1 valid, a cluster starting on line 0's last bit
        straddles into the valid line and must stay live.
        """
        line_bits = GEOMETRY.line_size * 8
        cache.sets[0][1].valid = True  # line index 1 in flat bit order
        assert cache.cluster_dead(line_bits - 1, 1)  # alone: dead
        assert not cache.cluster_dead(line_bits - 1, 2)  # straddles: live
        assert not cache.cluster_dead(line_bits - 2, 4)
        cache.sets[0][1].valid = False
        assert cache.cluster_dead(line_bits - 1, 2)

    def test_line_base_paddr(self, cache):
        cache.read(0x740, 4)
        for bit_index in range(cache.data_bits):
            line = cache.line_at(bit_index)
            if line.valid:
                assert cache.line_base_paddr(bit_index) == 0x740 & ~31
                break


class TestHierarchy:
    def test_two_level_fill(self, memory):
        l2 = Cache("L2", CacheGeometry(size=2048, assoc=4, line_size=32), memory)
        l1 = Cache("L1", GEOMETRY, l2)
        l1.read(0x100, 4)
        assert l1.misses == 1 and l2.misses == 1
        l1.read(0x120, 4)  # L1 miss (next line), may hit L2? different line
        assert l2.accesses == 2

    def test_l1_eviction_hits_l2(self, memory):
        l2 = Cache("L2", CacheGeometry(size=8192, assoc=4, line_size=32), memory)
        l1 = Cache("L1", GEOMETRY, l2)
        set_span = GEOMETRY.n_sets * GEOMETRY.line_size
        addresses = [way * set_span for way in range(GEOMETRY.assoc + 1)]
        for addr in addresses:
            l1.read(addr, 4)
        l2_misses = l2.misses
        l1.read(addresses[0], 4)  # evicted from L1, still in L2
        assert l2.misses == l2_misses


class ReferenceCache:
    """Trivial dict-based model for differential testing."""

    def __init__(self, memory):
        self.memory = memory
        self.store = {}

    def read(self, addr, size):
        return bytes(
            self.store.get(a, self.memory.data[a]) for a in range(addr, addr + size)
        )

    def write(self, addr, data):
        for offset, value in enumerate(data):
            self.store[addr + offset] = value


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),
            st.integers(0, 4095),
            st.binary(min_size=1, max_size=4),
        ),
        max_size=40,
    )
)
def test_differential_against_reference_model(ops):
    """Any access sequence returns exactly what a flat store would."""
    memory = MainMemory(8192, latency=1)
    memory.poke(0, bytes((i * 7) & 0xFF for i in range(8192)))
    cache = Cache("T", CacheGeometry(size=512, assoc=2, line_size=32), memory)
    reference = ReferenceCache(memory)
    # Keep accesses within one line.
    for is_write, addr, payload in ops:
        addr = min(addr, 4095)
        limit = 32 - (addr % 32)
        payload = payload[:limit]
        if is_write:
            cache.write(addr, payload)
            reference.write(addr, payload)
        else:
            got, _latency = cache.read(addr, len(payload))
            assert got == reference.read(addr, len(payload))
