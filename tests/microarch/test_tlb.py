"""TLB: lookup/fill/LRU, bit-field injection semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InjectionError
from repro.microarch.config import TLBGeometry
from repro.microarch.tlb import PERM_FIELD, PPN_FIELD, TLB, VPN_FIELD

GEOMETRY = TLBGeometry(entries=4, entry_bits=128)


@pytest.fixture
def tlb():
    return TLB("T", GEOMETRY)


class TestLookup:
    def test_miss_on_empty(self, tlb):
        assert tlb.lookup(5) is None
        assert tlb.misses == 1

    def test_fill_then_hit(self, tlb):
        tlb.fill(5, 9, 0b11)
        entry = tlb.lookup(5)
        assert entry is not None
        assert entry.ppn == 9 and entry.perms == 0b11
        assert tlb.misses == 0
        assert tlb.accesses == 1

    def test_fill_returns_entry(self, tlb):
        entry = tlb.fill(1, 2, 3)
        assert entry.vpn == 1 and entry.ppn == 2 and entry.perms == 3

    def test_lru_replacement(self, tlb):
        for vpn in range(GEOMETRY.entries):
            tlb.fill(vpn, vpn, 1)
        tlb.lookup(0)  # refresh entry 0
        tlb.fill(100, 100, 1)  # evicts the LRU (vpn 1)
        assert tlb.lookup(0) is not None
        assert tlb.lookup(1) is None

    def test_flush(self, tlb):
        tlb.fill(1, 1, 1)
        version = tlb.version
        tlb.flush()
        assert tlb.lookup(1) is None
        assert tlb.version > version

    def test_occupancy(self, tlb):
        assert tlb.occupancy() == 0.0
        tlb.fill(1, 1, 1)
        assert tlb.occupancy() == 0.25


class TestInjection:
    def test_data_bits(self, tlb):
        assert tlb.data_bits == 4 * 128

    def test_out_of_range_rejected(self, tlb):
        with pytest.raises(InjectionError):
            tlb.flip_bit(tlb.data_bits)

    def test_ppn_flip_changes_translation(self, tlb):
        tlb.fill(3, 7, 1)
        entry_index = tlb.entries.index(tlb.lookup(3))
        bit = entry_index * 128 + PPN_FIELD.start  # LSB of the ppn field
        assert tlb.flip_bit(bit) is True
        assert tlb.lookup(3).ppn == 7 ^ 1

    def test_vpn_flip_causes_miss_on_original_page(self, tlb):
        tlb.fill(3, 7, 1)
        entry_index = tlb.entries.index(
            next(e for e in tlb.entries if e.valid)
        )
        bit = entry_index * 128 + VPN_FIELD.start
        tlb.flip_bit(bit)
        assert tlb.lookup(3) is None          # original tag no longer matches
        assert tlb.lookup(3 ^ 1) is not None  # corrupted tag aliases

    def test_perm_flip(self, tlb):
        tlb.fill(3, 7, 0b00001)
        entry_index = tlb.entries.index(tlb.lookup(3))
        bit = entry_index * 128 + PERM_FIELD.start
        tlb.flip_bit(bit)
        assert tlb.lookup(3).perms == 0b00000

    def test_reserved_bits_are_masked(self, tlb):
        tlb.fill(3, 7, 1)
        assert tlb.flip_bit(PERM_FIELD.stop) is False  # attribute padding
        entry = tlb.lookup(3)
        assert entry.ppn == 7 and entry.perms == 1

    def test_flip_in_invalid_entry_returns_false(self, tlb):
        assert tlb.flip_bit(PPN_FIELD.start) is False

    def test_version_bumps_on_live_flip(self, tlb):
        tlb.fill(0, 0, 1)
        version = tlb.version
        tlb.flip_bit(PPN_FIELD.start)
        assert tlb.version > version


@given(
    fills=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(0, 31)),
        max_size=30,
    )
)
def test_map_consistency(fills):
    """The acceleration dict never disagrees with a linear scan."""
    tlb = TLB("T", GEOMETRY)
    for vpn, ppn, perms in fills:
        tlb.fill(vpn, ppn, perms)
    for vpn in {vpn for vpn, _ppn, _perms in fills}:
        entry = tlb.lookup(vpn)
        scan = [e for e in tlb.entries if e.valid and e.vpn == vpn]
        if entry is None:
            assert not scan
        else:
            assert entry in scan
