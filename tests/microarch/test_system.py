"""System assembly: loading, devices, steady state, kernel-intact probe."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.system import System
from repro.workloads import get_workload


@pytest.fixture
def susan_system():
    workload = get_workload("Susan C")
    return System(workload.program(DEFAULT_LAYOUT))


class TestConstruction:
    def test_kernel_and_user_loaded(self, susan_system):
        kernel_text = susan_system.kernel.segment("text")
        assert (
            susan_system.memory.peek(kernel_text.base, 8) == kernel_text.data[:8]
        )
        user = susan_system.user_program.segment("text")
        assert susan_system.memory.peek(user.base, 8) == user.data[:8]

    def test_page_table_written(self, susan_system):
        layout = susan_system.layout
        pte0 = int.from_bytes(
            susan_system.memory.peek(layout.page_table_base, 4), "little"
        )
        assert pte0 & 1  # valid
        assert pte0 >> 12 == 0  # identity

    def test_caches_start_cold_without_beam_mode(self, susan_system):
        assert susan_system.l1d.occupancy() == 0.0
        assert susan_system.l2.occupancy() == 0.0

    def test_beam_mode_prefills_hierarchy(self):
        workload = get_workload("Susan C")
        system = System(
            workload.program(DEFAULT_LAYOUT),
            beam_mode=True,
            golden_output=b"",
        )
        assert system.l2.occupancy() == 1.0
        assert system.l1d.occupancy() == 1.0
        assert system.l1i.occupancy() == 1.0

    def test_beam_steady_state_lines_are_os_background(self):
        workload = get_workload("Susan C")
        system = System(
            workload.program(DEFAULT_LAYOUT), beam_mode=True, golden_output=b""
        )
        layout = system.layout
        regions = {
            layout.region_of(system.l2.line_base_paddr(bit))
            for bit in range(0, system.l2.data_bits, system.l2.line_size * 8)
        }
        assert regions == {"os_background"}

    def test_oversized_segment_rejected(self, user_assembler):
        source = "_start:\n    nop\n    .data\nbig: .space 0x300000\n"
        program = user_assembler.assemble(source)
        with pytest.raises(ConfigurationError):
            System(program)


class TestKernelIntactProbe:
    def test_intact_on_fresh_system(self, susan_system):
        assert susan_system.kernel_intact()

    def test_corrupted_kernel_text_detected(self, susan_system):
        # Flip a bit of kernel text in memory (as a written-back corruption).
        susan_system.memory.data[0x44] ^= 0x10
        assert not susan_system.kernel_intact()

    def test_corrupted_kernel_pte_detected(self, susan_system):
        base = susan_system.layout.page_table_base
        susan_system.memory.data[base] ^= 0x01  # clear valid bit of PTE 0
        assert not susan_system.kernel_intact()

    def test_corrupted_kernel_tlb_translation_detected(self, susan_system):
        susan_system.itlb.fill(vpn=0, ppn=5, perms=0x0F)  # wrong frame
        assert not susan_system.kernel_intact()

    def test_user_memory_corruption_ignored(self, susan_system):
        susan_system.memory.data[DEFAULT_LAYOUT.user_data_base] ^= 0xFF
        assert susan_system.kernel_intact()


class TestCacheOccupancyReport:
    def test_occupancy_dict(self, susan_system):
        report = susan_system.cache_occupancy()
        assert set(report) == {"l1i", "l1d", "l2"}
        assert all(0.0 <= value <= 1.0 for value in report.values())
