"""Write-through ablation policy for the data cache."""

from __future__ import annotations

import dataclasses

import pytest

from repro.microarch.cache import Cache
from repro.microarch.config import CacheGeometry
from repro.microarch.memory import MainMemory

GEOMETRY = CacheGeometry(size=1024, assoc=2, line_size=32, write_through=True)


@pytest.fixture
def memory():
    return MainMemory(16 * 1024, latency=10)


@pytest.fixture
def cache(memory):
    return Cache("WT", GEOMETRY, memory)


class TestWriteThrough:
    def test_writes_propagate_immediately(self, cache, memory):
        cache.write(0x100, b"\xaa\xbb\xcc\xdd")
        assert memory.peek(0x100, 4) == b"\xaa\xbb\xcc\xdd"

    def test_lines_stay_clean(self, cache):
        cache.write(0x100, b"\xaa")
        for ways in cache.sets:
            for line in ways:
                assert not line.dirty

    def test_corruption_healed_by_eviction(self, cache, memory):
        """The ablation's point: with no dirty lines, an upset can never
        be written back; eviction always restores the correct data."""
        cache.write(0x0, b"\x00\x00\x00\x00")
        # Corrupt the line holding address 0.
        for bit in range(cache.data_bits):
            line = cache.line_at(bit)
            if line.valid and cache.line_base_paddr(bit) == 0:
                cache.flip_bit(bit)
                break
        # Evict by filling the set, then re-read.
        span = GEOMETRY.n_sets * GEOMETRY.line_size
        for way in range(1, GEOMETRY.assoc + 1):
            cache.read(way * span, 4)
        data, _ = cache.read(0, 4)
        assert data == b"\x00\x00\x00\x00"

    def test_write_back_still_default(self, memory):
        default_geometry = dataclasses.replace(GEOMETRY, write_through=False)
        cache = Cache("WB", default_geometry, memory)
        cache.write(0x100, b"\xaa")
        assert memory.peek(0x100, 1) != b"\xaa"

    def test_write_latency_includes_below(self, cache):
        latency = cache.write(0x100, b"\xaa")
        assert latency >= 10  # memory write included
