"""Digest soundness: equal digests must mean bit-identical state.

The early-termination layer classifies a run Masked the moment its digest
matches the golden digest at the same cycle, so the digest must cover
*every* piece of state that can steer the simulation: a single stale or
omitted bit would let a diverged run silently count as Masked.  These
tests pin sensitivity (any single-bit flip in any modeled component
changes the digest), restoration (overwriting the flipped state restores
equality), and the two documented exclusions (``TLB.version`` and the
derived ``TLB._map`` - covered through the per-entry reachability bit).
"""

from __future__ import annotations

import pytest

from repro.injection.campaign import run_golden
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.digest import probe_cycles, record_digests, system_digest
from repro.microarch.snapshot import SystemSnapshot, record_snapshots
from repro.microarch.system import System
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def workload():
    return get_workload("StringSearch")


@pytest.fixture(scope="module")
def golden(workload):
    return run_golden(workload, SCALED_A9_CONFIG)


@pytest.fixture(scope="module")
def warm(workload, golden):
    """A system paused mid-golden-run (caches/TLBs warm), plus its digest."""
    system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
    snapshot = record_snapshots(system, [golden.cycles // 2])[0]
    return system, snapshot


@pytest.fixture
def system(warm):
    """The warm machine, re-restored to the same state for every test."""
    machine, snapshot = warm
    snapshot.restore(machine)
    return machine


class TestDeterminism:
    def test_digest_is_a_pure_function_of_state(self, system):
        assert system_digest(system) == system_digest(system)

    def test_identical_machines_share_a_digest(self, workload, warm):
        _machine, snapshot = warm
        other = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshot.restore(other)
        assert system_digest(other) == system_digest(warm[0])

    def test_restored_snapshot_matches_recorded_golden_digest(
        self, workload, golden
    ):
        """The exclusion of ``TLB.version`` is what makes this hold.

        Restore bumps the version on purpose; had the digest included it,
        a restored machine could never match a from-boot golden digest and
        every digest probe would be a guaranteed miss.
        """
        cycle = probe_cycles(golden.cycles, 4)[1]
        recorder = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        recorded = record_digests(recorder, [cycle])[cycle]
        fresh = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshot = record_snapshots(fresh, [cycle])[0]
        target = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshot.restore(target)
        assert system_digest(target) == recorded


class TestSensitivity:
    """Any single-bit flip changes the digest; overwriting restores it."""

    def test_cache_payload_bit(self, system):
        before = system_digest(system)
        cache = system.l1d
        bit = next(
            index
            for index in range(cache.data_bits)
            if cache.line_at(index).valid
        )
        cache.flip_bit(bit)
        assert system_digest(system) != before
        cache.flip_bit(bit)
        assert system_digest(system) == before

    def test_cache_tag_metadata(self, system):
        """Valid/dirty/tag changes (the footprint of an eviction) register."""
        before = system_digest(system)
        line = next(
            line
            for ways in system.l2.sets
            for line in ways
            if line.valid
        )
        valid, tag = line.valid, line.tag
        line.valid = False
        assert system_digest(system) != before
        line.valid = valid
        assert system_digest(system) == before
        line.tag ^= 1
        assert system_digest(system) != before
        line.tag = tag
        assert system_digest(system) == before

    def test_tlb_entry_bit(self, system):
        # A PPN bit: live, and flip/flip-back is an exact inverse (a VPN
        # flip also rewires the lookup map, which can clobber a colliding
        # entry's slot irreversibly - covered by the hidden-map test).
        before = system_digest(system)
        tlb = system.dtlb
        bit = next(
            index * 128 + 20  # first PPN bit of the entry
            for index, entry in enumerate(tlb.entries)
            if entry.valid
        )
        tlb.flip_bit(bit)
        assert system_digest(system) != before
        tlb.flip_bit(bit)
        assert system_digest(system) == before

    def test_tlb_vpn_bit(self, system):
        before = system_digest(system)
        tlb = system.dtlb
        entry_index = next(
            index for index, entry in enumerate(tlb.entries) if entry.valid
        )
        tlb.flip_bit(entry_index * 128)  # bit 0: VPN tag
        assert system_digest(system) != before

    def test_tlb_hidden_map_divergence(self, system):
        """Entries equal but lookup map diverged => digests must differ.

        ``TLB._map`` is excluded from the digest as derived state, but it
        is not always rederivable once corrupted entries have collided -
        the per-entry reachability bit is what keeps the digest honest.
        """
        before = system_digest(system)
        tlb = system.dtlb
        entry = next(entry for entry in tlb.entries if entry.valid)
        removed = tlb._map.pop(entry.vpn)
        assert removed is entry
        assert system_digest(system) != before
        tlb._map[entry.vpn] = entry
        assert system_digest(system) == before

    def test_tlb_version_is_excluded(self, system):
        before = system_digest(system)
        system.dtlb.version += 1
        assert system_digest(system) == before

    def test_register_bit(self, system):
        before = system_digest(system)
        system.rf.flip_bit(7)
        assert system_digest(system) != before
        system.rf.flip_bit(7)
        assert system_digest(system) == before

    def test_memory_byte(self, system):
        before = system_digest(system)
        system.memory.data[1024] ^= 0x40
        assert system_digest(system) != before
        system.memory.data[1024] ^= 0x40
        assert system_digest(system) == before

    def test_device_output_byte(self, system):
        before = system_digest(system)
        devices = system._devices
        assert devices.output, "warm system should have produced output"
        devices.output[0] ^= 0x01
        assert system_digest(system) != before
        devices.output[0] ^= 0x01
        assert system_digest(system) == before

    def test_cycle_counter(self, system):
        """Same state at a *different* cycle must not match."""
        before = system_digest(system)
        system.core.cycle += 1
        assert system_digest(system) != before


class TestProbeGrid:
    def test_probes_fall_strictly_inside_the_run(self):
        cycles = probe_cycles(100_000, 24)
        assert cycles == sorted(set(cycles))
        assert all(0 < cycle < 100_000 for cycle in cycles)
        assert len(cycles) == 24

    def test_degenerate_grids_are_empty(self):
        assert probe_cycles(100_000, 0) == []
        assert probe_cycles(0, 8) == []

    def test_tiny_run_deduplicates(self):
        cycles = probe_cycles(3, 24)
        assert cycles == sorted(set(cycles))
        assert all(0 < cycle for cycle in cycles)

    def test_record_digests_covers_the_grid(self, workload, golden):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        cycles = probe_cycles(golden.cycles, 6)
        digests = record_digests(system, cycles)
        assert sorted(digests) == cycles
        assert all(len(digest) == 16 for digest in digests.values())
        # Different machine states must hash differently.
        assert len(set(digests.values())) == len(digests)

    def test_record_digests_stops_at_last_probe(self, workload, golden):
        """The golden suffix past the final probe is never simulated."""
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        cycles = probe_cycles(golden.cycles, 6)
        record_digests(system, cycles)
        assert system.core.cycle < golden.cycles


class TestSnapshotEarlyStop:
    def test_record_snapshots_stops_after_last_checkpoint(
        self, workload, golden
    ):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        cycle = golden.cycles // 4
        snapshots = record_snapshots(system, [cycle])
        assert len(snapshots) == 1
        assert system.core.cycle < golden.cycles // 2

    def test_unreachable_cycles_produce_no_snapshot(self, workload, golden):
        system = System(workload.program(DEFAULT_LAYOUT), config=SCALED_A9_CONFIG)
        snapshots = record_snapshots(
            system, [golden.cycles // 4, golden.cycles * 10]
        )
        assert len(snapshots) == 1

    def test_snapshot_equivalence_with_digest(self, workload, warm):
        """Snapshot-of-restored-state and digest agree on fidelity."""
        machine, snapshot = warm
        snapshot.restore(machine)
        digest = system_digest(machine)
        SystemSnapshot(machine).restore(machine)
        assert system_digest(machine) == digest
