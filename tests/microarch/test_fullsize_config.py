"""The faithful full-size Cortex-A9 configuration (Table II geometry)."""

from __future__ import annotations

import pytest

from repro.injection.components import Component, component_bits, total_modeled_bits
from repro.microarch.config import CORTEX_A9_CONFIG
from repro.microarch.system import System
from repro.workloads import get_workload


@pytest.mark.slow
class TestFullSizeMachine:
    @pytest.fixture(scope="class")
    def result_and_system(self):
        workload = get_workload("Susan C")
        system = System(workload.program(CORTEX_A9_CONFIG.layout), config=CORTEX_A9_CONFIG)
        result = system.run(max_cycles=100_000_000)
        return workload, system, result

    def test_workload_runs_identically(self, result_and_system):
        workload, _system, result = result_and_system
        assert result.exited_cleanly
        assert result.output == workload.reference_output()

    def test_bigger_caches_miss_less(self, result_and_system):
        _workload, _system, result = result_and_system
        # 32 KB L1s swallow the whole working set: only cold misses remain.
        assert result.counters.l1d_misses < 100
        assert result.counters.l1i_misses < 100

    def test_modeled_bits_match_paper_scale(self):
        total = total_modeled_bits(CORTEX_A9_CONFIG)
        # 32K + 32K + 512K caches = 4.6 Mbit, plus RF and TLBs.
        assert 4_600_000 < total < 4_800_000
        assert component_bits(CORTEX_A9_CONFIG, Component.L2) == 512 * 1024 * 8

    def test_beam_steady_state_on_full_size(self):
        workload = get_workload("Susan C")
        system = System(
            workload.program(CORTEX_A9_CONFIG.layout),
            config=CORTEX_A9_CONFIG,
            beam_mode=True,
            golden_output=b"",
        )
        assert system.l2.occupancy() == 1.0
        # The 512 KB background-OS region sits above user space.
        region = CORTEX_A9_CONFIG.layout.region_of(
            CORTEX_A9_CONFIG.layout.os_background_base
        )
        assert region == "os_background"
