"""Physical register file: architectural access, rename slots, injection."""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.errors import InjectionError
from repro.microarch.regfile import ARCH_REGS, PhysRegFile


@pytest.fixture
def rf():
    return PhysRegFile(int_phys_regs=24, fp_phys_regs=20)


class TestArchitectural:
    def test_write_read_int(self, rf):
        rf.write_int(3, 0x12345678)
        assert rf.read_int(3) == 0x12345678

    def test_int_masked_to_32_bits(self, rf):
        rf.write_int(1, 0x1_0000_0005)
        assert rf.read_int(1) == 5

    def test_negative_wraps(self, rf):
        rf.write_int(1, -1)
        assert rf.read_int(1) == 0xFFFFFFFF

    def test_write_read_fp(self, rf):
        rf.write_fp(2, 3.5)
        assert rf.read_fp(2) == 3.5

    def test_too_small_file_rejected(self):
        with pytest.raises(InjectionError):
            PhysRegFile(int_phys_regs=8, fp_phys_regs=20)


class TestRenameSlots:
    def test_history_refreshed_round_robin(self, rf):
        for value in range(20):
            rf.write_int(0, value)
        history = rf.int_regs[ARCH_REGS:]
        assert all(value in range(20) for value in history)

    def test_history_never_read_architecturally(self, rf):
        rf.write_int(0, 7)
        for reg in range(ARCH_REGS):
            if reg != 0:
                assert rf.read_int(reg) == 0


class TestInjection:
    def test_data_bits(self, rf):
        assert rf.data_bits == 24 * 32 + 20 * 64

    def test_flip_architectural_int_is_live(self, rf):
        rf.write_int(0, 0)
        assert rf.flip_bit(0) is True
        assert rf.read_int(0) == 1

    def test_flip_history_slot_is_dead(self, rf):
        assert rf.flip_bit(ARCH_REGS * 32) is False

    def test_flip_fp_bit(self, rf):
        rf.write_fp(0, 1.0)
        int_bits = 24 * 32
        # Flip the sign bit of f0 (bit 63 of the IEEE754 double).
        assert rf.flip_bit(int_bits + 63) is True
        assert rf.read_fp(0) == -1.0

    def test_fp_flip_can_produce_nan(self, rf):
        rf.write_fp(0, 1.0)
        int_bits = 24 * 32
        for bit in range(52, 63):  # exponent field
            rf.flip_bit(int_bits + bit)
        value = rf.read_fp(0)
        assert math.isnan(value) or math.isinf(value) or value != 1.0

    def test_out_of_range(self, rf):
        with pytest.raises(InjectionError):
            rf.flip_bit(rf.data_bits)

    @given(bit=st.integers(0, 24 * 32 + 20 * 64 - 1))
    def test_double_flip_is_identity(self, bit):
        rf = PhysRegFile(24, 20)
        rf.write_int(0, 0xDEADBEEF)
        rf.write_fp(0, 2.75)
        before_int = list(rf.int_regs)
        before_fp = struct.pack("<20d", *rf.fp_regs)
        rf.flip_bit(bit)
        rf.flip_bit(bit)
        assert rf.int_regs == before_int
        assert struct.pack("<20d", *rf.fp_regs) == before_fp
