"""Performance counters and Section IV-D deviation helper."""

from __future__ import annotations

import pytest

from repro.microarch.statistics import PerfCounters, relative_deviation


class TestPerfCounters:
    def test_starts_at_zero(self):
        counters = PerfCounters()
        assert all(value == 0 for value in counters.to_dict().values())

    def test_paper_counter_subset(self):
        counters = PerfCounters()
        subset = counters.paper_counters()
        assert set(subset) == {
            "cycles",
            "branch_misses",
            "l1d_accesses",
            "l1d_misses",
            "dtlb_misses",
            "l1i_misses",
            "itlb_misses",
        }

    def test_repr_omits_zeros(self):
        counters = PerfCounters()
        counters.cycles = 5
        text = repr(counters)
        assert "cycles=5" in text and "branches" not in text

    def test_counters_populated_by_run(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, buf
    ldw  r2, [r1]
    cmpi r2, 0
    beq  skip
    nop
skip:
{exit0}
    .data
buf: .word 0
""")
        counters = result.counters
        assert counters.instructions > 0
        assert counters.cycles >= counters.instructions
        assert counters.l1d_accesses > 0
        assert counters.l1i_misses > 0
        assert counters.branches >= 1
        assert counters.syscalls == 1


class TestRelativeDeviation:
    def test_zero_for_equal(self):
        assert relative_deviation(10, 10) == 0.0

    def test_zero_for_both_zero(self):
        assert relative_deviation(0, 0) == 0.0

    def test_symmetric(self):
        assert relative_deviation(5, 10) == relative_deviation(10, 5)

    def test_value(self):
        assert relative_deviation(50, 100) == pytest.approx(0.5)
