"""Timer interrupts and kernel/user state banking."""

from __future__ import annotations

import struct

from repro.errors import ProgramExit


class TestTimer:
    def test_timer_fires_periodically(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 200000          ; ~8 timer intervals of busy work
spin:
    subi r1, r1, 1
    cmpi r1, 0
    bgt  spin
{exit0}
""", max_cycles=10_000_000)
        assert isinstance(result.outcome, ProgramExit)
        assert result.counters.timer_irqs >= 5

    def test_timer_preserves_all_user_registers(self, run_program, exit0):
        """Every register and the flags survive interrupt delivery.

        The loop runs long enough to take many interrupts while repeatedly
        re-checking that r1-r11 still hold their sentinel values.
        """
        result = run_program(f"""
_start:
    movi r1, 101
    movi r2, 102
    movi r3, 103
    movi r4, 104
    movi r5, 105
    movi r6, 106
    movi r8, 108
    movi r9, 109
    movi r10, 110
    movi r11, 111
    li   r15, 120000
verify:
    cmpi r1, 101
    bne  corrupt
    cmpi r2, 102
    bne  corrupt
    cmpi r3, 103
    bne  corrupt
    cmpi r4, 104
    bne  corrupt
    cmpi r5, 105
    bne  corrupt
    cmpi r6, 106
    bne  corrupt
    cmpi r8, 108
    bne  corrupt
    cmpi r9, 109
    bne  corrupt
    cmpi r10, 110
    bne  corrupt
    cmpi r11, 111
    bne  corrupt
    subi r15, r15, 1
    cmpi r15, 0
    bgt  verify
    movi r0, 0
{exit0}
corrupt:
    movi r0, 1
    movi r7, 3
    syscall
{exit0}
""", max_cycles=30_000_000)
        assert result.counters.timer_irqs >= 3
        assert result.output == b""  # never took the corrupt path
        assert result.exited_cleanly

    def test_flags_banked_across_interrupt(self, run_program, exit0):
        """cmp/branch pairs behave identically under interrupt pressure.

        Sums i for i in [0, 50000) with the loop condition evaluated by a
        cmp whose dependent branch may be separated from it by an IRQ.
        """
        n = 50_000
        result = run_program(f"""
_start:
    li   r1, {n}
    movi r2, 0
    movi r3, 0
loop:
    add  r3, r3, r2
    addi r2, r2, 1
    cmp  r2, r1
    blt  loop
    mov  r0, r3
    movi r7, 3
    syscall
{exit0}
""", max_cycles=30_000_000)
        assert result.counters.timer_irqs > 0
        (total,) = struct.unpack("<I", result.output)
        assert total == (n * (n - 1) // 2) & 0xFFFFFFFF

    def test_kernel_tick_counter_advances(self, run_system, exit0):
        system, result = run_system(f"""
_start:
    li   r1, 150000
spin:
    subi r1, r1, 1
    cmpi r1, 0
    bgt  spin
{exit0}
""", max_cycles=10_000_000)
        ticks_addr = system.kernel.symbols["k_ticks"]
        ticks = int.from_bytes(system.l1d.peek(ticks_addr, 4), "little")
        assert ticks == result.counters.timer_irqs

    def test_sp_banking(self, run_program, exit0):
        """User sp is preserved across syscalls and interrupts."""
        result = run_program(f"""
_start:
    li   r1, 60000
spin:
    subi r1, r1, 1
    cmpi r1, 0
    bgt  spin
    push r1                  ; use the stack after many interrupts
    pop  r2
    mov  r0, sp
    movi r7, 3
    syscall
{exit0}
""", max_cycles=10_000_000)
        (sp_value,) = struct.unpack("<I", result.output)
        assert sp_value == 0x001FF000  # untouched user stack top
