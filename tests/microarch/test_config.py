"""Machine configuration validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.microarch.config import (
    CORTEX_A9_CONFIG,
    SCALED_A9_CONFIG,
    CacheGeometry,
    MachineConfig,
    TLBGeometry,
)


class TestCacheGeometry:
    def test_derived_quantities(self):
        geometry = CacheGeometry(size=4096, assoc=4, line_size=32)
        assert geometry.n_sets == 32
        assert geometry.n_lines == 128
        assert geometry.data_bits == 32768

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size=1000, assoc=3, line_size=32)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size=960, assoc=2, line_size=30)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size=2 * 3 * 32, assoc=2, line_size=32)


class TestTLBGeometry:
    def test_paper_size(self):
        geometry = TLBGeometry()
        assert geometry.data_bits == 4096  # 512 bytes, as in the paper


class TestMachineConfig:
    def test_scaled_config_preserves_paper_shape(self):
        """Associativities match Table II; sizes scale together (8x L1,
        32x L2), keeping L1 < L2."""
        assert SCALED_A9_CONFIG.l1i.assoc == 4
        assert SCALED_A9_CONFIG.l1d.assoc == 4
        assert SCALED_A9_CONFIG.l2.assoc == 8
        assert SCALED_A9_CONFIG.l1d.size < SCALED_A9_CONFIG.l2.size

    def test_cortex_config_matches_table2(self):
        assert CORTEX_A9_CONFIG.l1i.size == 32 * 1024
        assert CORTEX_A9_CONFIG.l1d.size == 32 * 1024
        assert CORTEX_A9_CONFIG.l2.size == 512 * 1024
        assert CORTEX_A9_CONFIG.freq_hz == pytest.approx(667e6)

    def test_regfile_bits(self):
        config = SCALED_A9_CONFIG
        expected = config.int_phys_regs * 32 + config.fp_phys_regs * 64
        assert config.regfile_data_bits == expected

    def test_too_small_regfile_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(
                name="bad",
                l1i=SCALED_A9_CONFIG.l1i,
                l1d=SCALED_A9_CONFIG.l1d,
                l2=SCALED_A9_CONFIG.l2,
                int_phys_regs=8,
            )

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(
                name="bad",
                l1i=CacheGeometry(size=4096, assoc=4, line_size=64),
                l1d=SCALED_A9_CONFIG.l1d,
                l2=SCALED_A9_CONFIG.l2,
            )

    def test_with_atomic(self):
        atomic = SCALED_A9_CONFIG.with_atomic()
        assert atomic.atomic and not SCALED_A9_CONFIG.atomic
        assert atomic.l1d == SCALED_A9_CONFIG.l1d
