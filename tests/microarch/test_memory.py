"""Main memory model."""

from __future__ import annotations

import pytest

from repro.errors import SegmentationFault
from repro.microarch.memory import MainMemory


@pytest.fixture
def memory():
    return MainMemory(1024, latency=7)


class TestBlocks:
    def test_read_returns_latency(self, memory):
        data, latency = memory.read_block(0, 32)
        assert data == bytes(32)
        assert latency == 7

    def test_write_then_read(self, memory):
        memory.write_block(64, b"abc")
        data, _latency = memory.read_block(64, 3)
        assert data == b"abc"

    def test_read_out_of_bounds(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read_block(1020, 8)
        with pytest.raises(SegmentationFault):
            memory.read_block(-4, 4)

    def test_write_out_of_bounds(self, memory):
        with pytest.raises(SegmentationFault):
            memory.write_block(1023, b"xy")


class TestFunctionalAccess:
    def test_poke_peek(self, memory):
        memory.poke(100, b"\x01\x02")
        assert memory.peek(100, 2) == b"\x01\x02"

    def test_poke_out_of_bounds(self, memory):
        with pytest.raises(SegmentationFault):
            memory.poke(1023, b"ab")

    def test_peek_returns_copy(self, memory):
        memory.poke(0, b"\x11")
        snapshot = memory.peek(0, 1)
        memory.poke(0, b"\x22")
        assert snapshot == b"\x11"
