"""Execution tracing."""

from __future__ import annotations

from repro.microarch.trace import Tracer


class TestTracer:
    def test_records_every_instruction(self, run_program, exit0):
        tracer = Tracer(limit=10_000)
        result = run_program(f"""
_start:
    movi r1, 5
    movi r2, 6
    add  r3, r1, r2
{exit0}
""", trace=None)  # baseline instruction count without tracing
        baseline = result.counters.instructions

        result = run_program(f"""
_start:
    movi r1, 5
    movi r2, 6
    add  r3, r1, r2
{exit0}
""", trace=tracer.hook)
        # The trace also records the terminal instruction (the kernel's
        # halt), whose step raises before the retired-instruction counter
        # increments - so it sees exactly one more than icount.
        assert result.counters.instructions == baseline
        assert tracer.instructions_seen == baseline + 1

    def test_ring_buffer_bounded(self, run_program, exit0):
        tracer = Tracer(limit=16)
        run_program(f"""
_start:
    li   r1, 500
loop:
    subi r1, r1, 1
    cmpi r1, 0
    bgt  loop
{exit0}
""", trace=tracer.hook)
        assert len(tracer) == 16
        assert tracer.instructions_seen > 16

    def test_records_carry_disassembly_and_mode(self, run_program, exit0):
        tracer = Tracer(limit=100_000)
        run_program(f"""
_start:
    movi r1, 42
{exit0}
""", trace=tracer.hook)
        texts = [record.text for record in tracer.records]
        assert "movi r1, 42" in texts
        modes = {record.mode for record in tracer.records}
        assert modes == {"user", "kernel"}  # boot + syscall run in kernel

    def test_tail_formatting(self, run_program, exit0):
        tracer = Tracer()
        run_program(f"_start:\n{exit0}", trace=tracer.hook)
        tail = tracer.format_tail(5)
        assert "0x" in tail and len(tail.splitlines()) == 5

    def test_trace_shows_the_faulting_instruction(self, run_program, exit0):
        tracer = Tracer()
        result = run_program(f"""
_start:
    li   r1, 0x00700000
    ldw  r2, [r1]
{exit0}
""", trace=tracer.hook)
        user_records = [r for r in tracer.records if r.mode == "user"]
        assert any("ldw r2, [r1, 0]" in r.text for r in user_records)

    def test_tracing_does_not_change_results(self, run_program, exit0):
        source = f"""
_start:
    li   r1, 100
    movi r3, 0
loop:
    add  r3, r3, r1
    subi r1, r1, 1
    cmpi r1, 0
    bgt  loop
    mov  r0, r3
    movi r7, 3
    syscall
{exit0}
"""
        plain = run_program(source)
        traced = run_program(source, trace=Tracer().hook)
        assert plain.output == traced.output
        assert plain.cycles == traced.cycles
