"""Run-loop mechanics: event scheduling, atomic mode, cycle accounting."""

from __future__ import annotations

import pytest

from repro.errors import ProgramExit, WatchdogTimeout
from repro.isa.assembler import Assembler
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch.system import System

SPIN = """
_start:
    li   r1, 30000
spin:
    subi r1, r1, 1
    cmpi r1, 0
    bgt  spin
    movi r0, 0
    movi r7, 0
    syscall
"""


def build(source=SPIN, config=SCALED_A9_CONFIG):
    assembler = Assembler(
        text_base=DEFAULT_LAYOUT.user_text_base,
        data_base=DEFAULT_LAYOUT.user_data_base,
    )
    return System(assembler.assemble(source, entry="_start"), config=config)


class TestEvents:
    def test_events_fire_in_cycle_order(self):
        system = build()
        fired = []
        events = [
            (50_000, lambda: fired.append("late")),
            (10_000, lambda: fired.append("early")),
            (30_000, lambda: fired.append("middle")),
        ]
        with pytest.raises(ProgramExit):
            system.core.run(max_cycles=10_000_000, events=events)
        assert fired == ["early", "middle", "late"]

    def test_event_at_cycle_zero_fires_before_first_instruction(self):
        system = build()
        seen = {}
        events = [(0, lambda: seen.setdefault("icount", system.core.icount))]
        with pytest.raises(ProgramExit):
            system.core.run(max_cycles=10_000_000, events=events)
        assert seen["icount"] == 0

    def test_event_after_exit_never_fires(self):
        system = build()
        fired = []
        with pytest.raises(ProgramExit):
            system.core.run(
                max_cycles=10_000_000,
                events=[(10**9, lambda: fired.append("no"))],
            )
        assert not fired

    def test_watchdog_precedence(self):
        system = build("_start:\nloop:\n    b loop\n")
        with pytest.raises(WatchdogTimeout):
            system.core.run(max_cycles=5_000)


class TestAtomicMode:
    def test_atomic_mode_runs_same_program(self):
        detailed = build()
        atomic = build(config=SCALED_A9_CONFIG.with_atomic())
        result_detailed = detailed.run(max_cycles=10_000_000)
        result_atomic = atomic.run(max_cycles=10_000_000)
        assert result_detailed.exited_cleanly and result_atomic.exited_cleanly
        assert (
            result_detailed.counters.instructions
            == result_atomic.counters.instructions
        )

    def test_atomic_mode_has_fewer_cycles(self):
        detailed = build().run(max_cycles=10_000_000)
        atomic = build(config=SCALED_A9_CONFIG.with_atomic()).run(
            max_cycles=10_000_000
        )
        assert atomic.cycles < detailed.cycles

    def test_atomic_mode_skips_cache_accounting(self):
        result = build(config=SCALED_A9_CONFIG.with_atomic()).run(
            max_cycles=10_000_000
        )
        assert result.counters.l1d_accesses == 0
        assert result.counters.itlb_accesses == 0


class TestCycleAccounting:
    def test_cycles_at_least_instructions(self):
        result = build().run(max_cycles=10_000_000)
        assert result.cycles >= result.counters.instructions

    def test_memory_traffic_costs_cycles(self):
        touch = """
_start:
    la   r1, buf
    movi r2, 0
loop:
    ldw  r3, [r1]
    addi r1, r1, 32
    addi r2, r2, 1
    cmpi r2, 64
    blt  loop
    movi r0, 0
    movi r7, 0
    syscall
    .data
buf: .space 2048
"""
        result = build(touch).run(max_cycles=10_000_000)
        # Every 32-byte stride is an L1D miss: cycles per instruction must
        # clearly exceed 1.
        assert result.cycles > result.counters.instructions * 1.5
