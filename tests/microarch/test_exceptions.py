"""Exception and privilege model: user faults become Application Crashes
(delivered by the kernel), kernel faults become System Crashes."""

from __future__ import annotations

import pytest

from repro.errors import ApplicationAbort, ProgramExit, WatchdogTimeout


class TestUserFaults:
    def test_segfault_unmapped_address(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0x00700000      ; beyond the 2 MB of RAM
    ldw  r2, [r1]
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)
        assert result.outcome.cause == 2  # SegmentationFault

    def test_user_cannot_touch_kernel_memory(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 0x100           ; kernel text
    ldw  r2, [r1]
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)

    def test_user_cannot_write_text_pages(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, _start
    movi r2, 0
    stw  r2, [r1]
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)

    def test_user_cannot_access_devices(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0xffff0000
    movi r2, 65
    stw  r2, [r1]
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)

    def test_misaligned_word_access(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, buf
    addi r1, r1, 1
    ldw  r2, [r1]
{exit0}
    .data
buf: .space 8
""")
        assert isinstance(result.outcome, ApplicationAbort)
        assert result.outcome.cause == 3  # AlignmentFault

    def test_division_by_zero(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r1, 10
    movi r2, 0
    div  r3, r1, r2
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)
        assert result.outcome.cause == 5  # ArithmeticFault

    def test_illegal_instruction(self, run_program, exit0):
        result = run_program(f"""
_start:
    la   r1, garbage
    br   r1
{exit0}
    .data
garbage:
    .word 0x00000000         ; undefined opcode
""")
        # Jumping into .data: the page is user-writable but not executable.
        assert isinstance(result.outcome, ApplicationAbort)

    def test_privileged_instruction_from_user(self, run_program, exit0):
        result = run_program(f"""
_start:
    halt
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)
        assert result.outcome.cause == 4  # PrivilegeFault

    def test_csr_access_from_user(self, run_program, exit0):
        result = run_program(f"""
_start:
    csrr r1, epc
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)

    def test_eret_from_user(self, run_program, exit0):
        result = run_program(f"""
_start:
    eret
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)

    def test_wild_jump_faults(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0x001fc000      ; user stack region: readable but not executable?
    li   r1, 0x00300000      ; actually: unmapped region
    br   r1
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)

    def test_unknown_syscall_kills_app(self, run_program):
        result = run_program("""
_start:
    movi r7, 99
    syscall
""")
        assert isinstance(result.outcome, ApplicationAbort)
        assert result.outcome.cause == 7


class TestExitStatus:
    def test_exit_status_propagates(self, run_program):
        result = run_program("""
_start:
    movi r0, 3
    movi r7, 0
    syscall
""")
        assert isinstance(result.outcome, ProgramExit)
        assert result.outcome.status == 3
        assert not result.exited_cleanly

    def test_clean_exit(self, run_program, exit0):
        result = run_program(f"_start:\n{exit0}")
        assert result.exited_cleanly


class TestWatchdog:
    def test_infinite_loop_times_out(self, run_program):
        result = run_program("""
_start:
loop:
    b loop
""", max_cycles=100_000)
        assert isinstance(result.outcome, WatchdogTimeout)

    def test_kernel_intact_after_user_hang(self, run_system):
        system, result = run_system("""
_start:
loop:
    b loop
""", max_cycles=100_000)
        assert isinstance(result.outcome, WatchdogTimeout)
        assert system.kernel_intact()


class TestAppCrashDetails:
    def test_abort_carries_faulting_pc(self, run_program, exit0):
        result = run_program(f"""
_start:
    li   r1, 0x00700000
    ldw  r2, [r1]
{exit0}
""")
        assert isinstance(result.outcome, ApplicationAbort)
        # EPC points at the faulting user instruction (inside user text).
        assert 0x10000 <= result.outcome.pc < 0x60000

    def test_app_crash_preserves_prior_output(self, run_program, exit0):
        result = run_program(f"""
_start:
    movi r0, 42
    movi r7, 3
    syscall
    li   r1, 0x00700000
    ldw  r2, [r1]
{exit0}
""")
        assert result.output == (42).to_bytes(4, "little")
        assert isinstance(result.outcome, ApplicationAbort)
