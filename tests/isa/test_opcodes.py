"""Opcode table invariants the decoder and injector rely on."""

from __future__ import annotations

from repro.isa.opcodes import (
    FLOAT_DEST_OPS,
    FLOAT_SRC_OPS,
    FORMAT_OF,
    MNEMONIC_OF,
    OP_BY_VALUE,
    OP_OF_MNEMONIC,
    PRIVILEGED_OPS,
    ZERO_EXTENDED_IMM_OPS,
    Format,
    Op,
)


class TestTableConsistency:
    def test_every_op_has_a_format(self):
        assert set(FORMAT_OF) == set(Op)

    def test_opcode_values_unique(self):
        values = [int(op) for op in Op]
        assert len(set(values)) == len(values)

    def test_mnemonics_bijective(self):
        assert set(OP_OF_MNEMONIC.values()) == set(Op)
        assert {MNEMONIC_OF[op] for op in Op} == set(OP_OF_MNEMONIC)

    def test_op_by_value_covers_all(self):
        assert set(OP_BY_VALUE.values()) == set(Op)


class TestSparsity:
    def test_opcode_space_is_sparse(self):
        """Most of the 8-bit opcode space must be *undefined* so corrupted
        opcodes usually raise illegal-instruction (real-ISA density)."""
        defined = len(OP_BY_VALUE)
        assert defined / 256 < 0.30

    def test_single_bit_flips_mix_invalid_and_valid(self):
        """Single-bit flips of a defined opcode byte must produce a real
        mix: a substantial share decodes to *nothing* (illegal
        instruction), and a substantial share lands on a different valid
        operation - the same duality real dense opcode spaces have, and
        the reason injected I-side faults split between crashes and
        silent misbehaviour."""
        invalid_transitions = 0
        total = 0
        for op in Op:
            for bit in range(8):
                flipped = int(op) ^ (1 << bit)
                total += 1
                if flipped not in OP_BY_VALUE:
                    invalid_transitions += 1
        share = invalid_transitions / total
        assert 0.25 < share < 0.9


class TestGroups:
    def test_privileged_set(self):
        assert PRIVILEGED_OPS == {Op.ERET, Op.HALT, Op.CSRR, Op.CSRW}

    def test_zero_extended_group_is_logical(self):
        for op in ZERO_EXTENDED_IMM_OPS:
            assert FORMAT_OF[op] is Format.I

    def test_float_groups_consistent(self):
        # Ops that both read and write f-registers appear in both sets.
        both = FLOAT_DEST_OPS & FLOAT_SRC_OPS
        assert Op.FADD in both and Op.FMOV in both
        # Converts cross the files: exactly one side each.
        assert Op.FCVT in FLOAT_DEST_OPS and Op.FCVT not in FLOAT_SRC_OPS
        assert Op.FCVTI in FLOAT_SRC_OPS and Op.FCVTI not in FLOAT_DEST_OPS
