"""Assembler: directives, labels, pseudo-instructions, error reporting."""

from __future__ import annotations

import struct

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import Assembler, Program
from repro.isa.encoding import decode
from repro.isa.opcodes import Op

TEXT = 0x10000
DATA = 0x20000


@pytest.fixture
def asm():
    return Assembler(text_base=TEXT, data_base=DATA)


def words(program: Program) -> list[int]:
    data = program.segment("text").data
    return list(struct.unpack(f"<{len(data) // 4}I", data))


class TestBasics:
    def test_simple_program(self, asm):
        program = asm.assemble("_start:\n    nop\n    nop\n")
        assert program.entry == TEXT
        assert len(program.segment("text").data) == 8

    def test_entry_defaults_to_start_label(self, asm):
        program = asm.assemble("    nop\n_start:\n    nop\n")
        assert program.entry == TEXT + 4

    def test_explicit_entry(self, asm):
        program = asm.assemble("main:\n    nop\n", entry="main")
        assert program.entry == TEXT

    def test_missing_entry_raises(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("    nop\n", entry="nowhere")

    def test_comments_stripped(self, asm):
        program = asm.assemble("_start:\n    nop ; comment\n    nop # another\n")
        assert len(program.segment("text").data) == 8

    def test_label_and_instruction_same_line(self, asm):
        program = asm.assemble("_start: nop\nfoo: nop\n")
        assert program.symbols["foo"] == TEXT + 4

    def test_duplicate_label_rejected(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("a:\n    nop\na:\n    nop\n")

    def test_unknown_mnemonic_reports_line(self, asm):
        with pytest.raises(AssemblerError) as excinfo:
            asm.assemble("_start:\n    nop\n    frobnicate r1\n")
        assert excinfo.value.line == 3

    def test_undefined_symbol_rejected(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("_start:\n    b nowhere\n")


class TestDirectives:
    def test_word_directive(self, asm):
        program = asm.assemble("_start: nop\n    .data\nv:  .word 1, 2, 0xff\n")
        assert program.segment("data").data == struct.pack("<3I", 1, 2, 0xFF)

    def test_word_with_symbol(self, asm):
        program = asm.assemble(
            "_start: nop\n    .data\nptr: .word target\ntarget: .word 7\n"
        )
        value = struct.unpack_from("<I", program.segment("data").data, 0)[0]
        assert value == program.symbols["target"]

    def test_byte_directive(self, asm):
        program = asm.assemble("_start: nop\n    .data\nb: .byte 1, 'a', 0xff\n")
        assert program.segment("data").data == bytes([1, ord("a"), 0xFF])

    def test_double_directive(self, asm):
        program = asm.assemble("_start: nop\n    .data\nd: .double 1.5, -2.25\n")
        assert program.segment("data").data == struct.pack("<2d", 1.5, -2.25)

    def test_space_directive(self, asm):
        program = asm.assemble("_start: nop\n    .data\ns: .space 10\ne: .byte 1\n")
        assert program.symbols["e"] - program.symbols["s"] == 10

    def test_ascii_and_asciz(self, asm):
        program = asm.assemble(
            '_start: nop\n    .data\na: .ascii "hi"\nz: .asciz "yo"\n'
        )
        assert program.segment("data").data == b"hiyo\x00"

    def test_ascii_with_escapes(self, asm):
        program = asm.assemble('_start: nop\n    .data\ns: .ascii "a\\nb"\n')
        assert program.segment("data").data == b"a\nb"

    def test_align(self, asm):
        program = asm.assemble(
            "_start: nop\n    .data\n    .byte 1\n    .align 8\nd: .double 1.0\n"
        )
        assert program.symbols["d"] % 8 == 0

    def test_align_requires_power_of_two(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("_start: nop\n    .data\n    .align 3\n")

    def test_negative_space_rejected(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("_start: nop\n    .data\n    .space -1\n")


class TestPseudoInstructions:
    def test_li_small_is_one_word(self, asm):
        program = asm.assemble("_start:\n    li r1, 100\n")
        (word,) = words(program)
        inst = decode(word)
        assert inst.op is Op.MOVI and inst.imm == 100

    def test_li_large_is_two_words(self, asm):
        program = asm.assemble("_start:\n    li r1, 0x12345678\n")
        first, second = words(program)
        assert decode(first).op is Op.MOVHI
        assert decode(first).imm == 0x1234
        assert decode(second).op is Op.ORRI
        assert decode(second).imm == 0x5678

    def test_li_negative_small(self, asm):
        program = asm.assemble("_start:\n    li r1, -5\n")
        (word,) = words(program)
        assert decode(word).imm == -5

    def test_la_resolves_symbol(self, asm):
        program = asm.assemble("_start:\n    la r1, buf\n    .data\nbuf: .word 0\n")
        first, second = words(program)
        address = program.symbols["buf"]
        assert decode(first).imm == (address >> 16) & 0xFFFF
        assert decode(second).imm == address & 0xFFFF

    def test_push_pop_expand(self, asm):
        program = asm.assemble("_start:\n    push r1\n    pop r1\n")
        w = words(program)
        assert [decode(x).op for x in w] == [Op.SUBI, Op.STW, Op.LDW, Op.ADDI]

    def test_ret_is_br_lr(self, asm):
        program = asm.assemble("_start:\n    ret\n")
        inst = decode(words(program)[0])
        assert inst.op is Op.BR and inst.rs1 == 14

    def test_call_is_bl(self, asm):
        program = asm.assemble("_start:\n    call f\nf:\n    ret\n")
        inst = decode(words(program)[0])
        assert inst.op is Op.BL and inst.imm == 0

    def test_fli_uses_constant_pool(self, asm):
        program = asm.assemble("_start:\n    fli f1, 3.25\n")
        data = program.segment("data").data
        assert struct.unpack("<d", data[-8:])[0] == 3.25

    def test_fli_pool_dedupes_equal_constants(self, asm):
        program = asm.assemble("_start:\n    fli f1, 2.5\n    fli f2, 2.5\n")
        assert len(program.segment("data").data) == 8


class TestBranches:
    def test_backward_branch_offset(self, asm):
        program = asm.assemble("_start:\nloop:\n    nop\n    b loop\n")
        branch = decode(words(program)[1])
        # target = pc + 4 + imm*4: loop is at +0, branch at +4.
        assert branch.imm == -2

    def test_forward_branch_offset(self, asm):
        program = asm.assemble("_start:\n    b done\n    nop\ndone:\n    nop\n")
        branch = decode(words(program)[0])
        assert branch.imm == 1

    def test_memory_operand_forms(self, asm):
        program = asm.assemble(
            "_start:\n    ldw r1, [r2]\n    ldw r1, [r2, 8]\n    ldw r1, [r2, -4]\n"
        )
        offsets = [decode(w).imm for w in words(program)]
        assert offsets == [0, 8, -4]

    def test_lo_hi_expressions(self, asm):
        program = asm.assemble(
            "_start:\n    movhi r1, hi(buf)\n    orri r1, r1, lo(buf)\n"
            "    .data\nbuf: .word 0\n"
        )
        hi_word, lo_word = words(program)
        address = program.symbols["buf"]
        assert decode(hi_word).imm == (address >> 16) & 0xFFFF
        assert decode(lo_word).imm == address & 0xFFFF

    def test_symbol_arithmetic(self, asm):
        program = asm.assemble(
            "_start: nop\n    .data\nbase: .space 16\nv: .word base+8\n"
        )
        value = struct.unpack_from("<I", program.segment("data").data, 16)[0]
        assert value == program.symbols["base"] + 8

    def test_oversized_immediate_rejected(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("_start:\n    addi r1, r1, 0x12345\n")

    def test_bad_register_rejected(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("_start:\n    add r1, r2, r16\n")

    def test_csr_by_name_and_number(self, asm):
        program = asm.assemble("_start:\n    csrr r1, epc\n    csrr r1, 0\n")
        first, second = words(program)
        assert decode(first).imm == decode(second).imm == 0
