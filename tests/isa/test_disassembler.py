"""Disassembler: readable text for valid words, graceful for garbage."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import encode, try_decode
from repro.isa.opcodes import Op


class TestDisassembleWord:
    def test_alu(self):
        assert disassemble_word(encode(Op.ADD, rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"

    def test_immediate(self):
        assert (
            disassemble_word(encode(Op.ADDI, rd=1, rs1=2, imm=-7))
            == "addi r1, r2, -7"
        )

    def test_memory(self):
        assert (
            disassemble_word(encode(Op.LDW, rd=3, rs1=13, imm=8))
            == "ldw r3, [r13, 8]"
        )

    def test_float_memory(self):
        assert (
            disassemble_word(encode(Op.FLD, rd=2, rs1=4, imm=0))
            == "fld f2, [r4, 0]"
        )

    def test_branch_with_address(self):
        text = disassemble_word(encode(Op.B, imm=-2), address=0x100)
        assert text == "b 0xfc"

    def test_branch_without_address(self):
        assert disassemble_word(encode(Op.BEQ, imm=3)) == "beq +12"

    def test_fp_ops_use_f_registers(self):
        assert (
            disassemble_word(encode(Op.FADD, rd=1, rs1=2, rs2=3))
            == "fadd f1, f2, f3"
        )

    def test_cmp(self):
        assert disassemble_word(encode(Op.CMP, rs1=1, rs2=2)) == "cmp r1, r2"

    def test_nullary(self):
        assert disassemble_word(encode(Op.SYSCALL)) == "syscall"

    def test_garbage_renders_as_word(self):
        assert disassemble_word(0x00000000) == ".word 0x00000000"

    @given(word=st.integers(0, 0xFFFFFFFF))
    def test_never_crashes(self, word):
        text = disassemble_word(word)
        assert isinstance(text, str) and text


class TestDisassembleBuffer:
    def test_addresses_and_lines(self):
        words = [encode(Op.NOP), encode(Op.ADD, rd=1, rs1=1, rs2=1)]
        data = b"".join(w.to_bytes(4, "little") for w in words)
        lines = disassemble(data, base=0x1000)
        assert lines[0].startswith("0x00001000: nop")
        assert lines[1].startswith("0x00001004: add")

    def test_trailing_bytes_ignored(self):
        data = encode(Op.NOP).to_bytes(4, "little") + b"\x01\x02"
        assert len(disassemble(data)) == 1
