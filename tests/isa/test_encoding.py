"""Encoding/decoding: round trips, field limits, illegal-word behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, IllegalInstruction
from repro.isa.encoding import DecodedInstruction, decode, encode, try_decode
from repro.isa.opcodes import (
    FORMAT_OF,
    OP_BY_VALUE,
    ZERO_EXTENDED_IMM_OPS,
    Format,
    Op,
)

R_OPS = [op for op, fmt in FORMAT_OF.items() if fmt is Format.R]
I_OPS = [op for op, fmt in FORMAT_OF.items() if fmt is Format.I]
J_OPS = [op for op, fmt in FORMAT_OF.items() if fmt is Format.J]
N_OPS = [op for op, fmt in FORMAT_OF.items() if fmt is Format.N]


class TestEncode:
    def test_r_format_packs_fields(self):
        word = encode(Op.ADD, rd=1, rs1=2, rs2=3)
        assert word == (int(Op.ADD) << 24) | (1 << 20) | (2 << 16) | (3 << 12)

    def test_i_format_negative_immediate(self):
        word = encode(Op.ADDI, rd=1, rs1=2, imm=-1)
        assert word & 0xFFFF == 0xFFFF

    def test_j_format_negative_offset(self):
        word = encode(Op.B, imm=-2)
        assert word & 0xFFFFFF == 0xFFFFFE

    @pytest.mark.parametrize("register", [-1, 16, 100])
    def test_register_out_of_range_rejected(self, register):
        with pytest.raises(EncodingError):
            encode(Op.ADD, rd=register)

    def test_imm16_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode(Op.ADDI, rd=0, rs1=0, imm=1 << 16)
        with pytest.raises(EncodingError):
            encode(Op.ADDI, rd=0, rs1=0, imm=-(1 << 15) - 1)

    def test_imm24_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode(Op.B, imm=1 << 23)


class TestDecode:
    def test_undefined_opcode_raises(self):
        assert 0x00 not in OP_BY_VALUE
        with pytest.raises(IllegalInstruction):
            decode(0x00000000)

    def test_r_format_reserved_bits_must_be_zero(self):
        word = encode(Op.ADD, rd=1, rs1=2, rs2=3) | 0x1
        with pytest.raises(IllegalInstruction):
            decode(word)

    def test_n_format_reserved_bits_must_be_zero(self):
        word = encode(Op.NOP) | 0x100
        with pytest.raises(IllegalInstruction):
            decode(word)

    def test_try_decode_returns_none_for_garbage(self):
        assert try_decode(0xFFFFFFFF) is None or isinstance(
            try_decode(0xFFFFFFFF), DecodedInstruction
        )

    def test_sign_extension_of_i_imm(self):
        inst = decode(encode(Op.ADDI, rd=0, rs1=0, imm=-5))
        assert inst.imm == -5

    def test_zero_extension_of_logical_imm(self):
        inst = decode(encode(Op.ORRI, rd=0, rs1=0, imm=0xFFFF))
        assert inst.imm == 0xFFFF

    def test_j_sign_extension(self):
        inst = decode(encode(Op.B, imm=-100))
        assert inst.imm == -100


class TestRoundTrip:
    @given(
        op=st.sampled_from(R_OPS),
        rd=st.integers(0, 15),
        rs1=st.integers(0, 15),
        rs2=st.integers(0, 15),
    )
    def test_r_round_trip(self, op, rd, rs1, rs2):
        inst = decode(encode(op, rd=rd, rs1=rs1, rs2=rs2))
        assert inst == DecodedInstruction(op, rd, rs1, rs2, 0)

    @given(
        op=st.sampled_from(I_OPS),
        rd=st.integers(0, 15),
        rs1=st.integers(0, 15),
        imm=st.integers(-(1 << 15), (1 << 15) - 1),
    )
    def test_i_round_trip(self, op, rd, rs1, imm):
        inst = decode(encode(op, rd=rd, rs1=rs1, imm=imm))
        assert inst.op is op and inst.rd == rd and inst.rs1 == rs1
        if op in ZERO_EXTENDED_IMM_OPS:
            assert inst.imm == imm & 0xFFFF
        else:
            assert inst.imm == imm

    @given(op=st.sampled_from(J_OPS), imm=st.integers(-(1 << 23), (1 << 23) - 1))
    def test_j_round_trip(self, op, imm):
        inst = decode(encode(op, imm=imm))
        assert inst.op is op and inst.imm == imm

    @given(op=st.sampled_from(N_OPS))
    def test_n_round_trip(self, op):
        assert decode(encode(op)).op is op

    @given(word=st.integers(0, 0xFFFFFFFF))
    def test_decode_never_crashes(self, word):
        """The hardware decoder accepts arbitrary corrupted words."""
        result = try_decode(word)
        assert result is None or isinstance(result, DecodedInstruction)

    @given(word=st.integers(0, 0xFFFFFFFF))
    def test_decode_is_deterministic(self, word):
        assert try_decode(word) == try_decode(word)
