"""Property: disassembler output is valid assembler input (R/I formats).

J-format is excluded: its disassembly renders resolved absolute targets,
which only reassemble identically at the same address.
"""

from __future__ import annotations

import struct

from hypothesis import given, strategies as st

from repro.isa.assembler import Assembler
from repro.isa.disassembler import disassemble_word
from repro.isa.encoding import encode
from repro.isa.opcodes import FORMAT_OF, Format, Op

R_OPS = [op for op, fmt in FORMAT_OF.items() if fmt is Format.R]
I_OPS = [
    op
    for op, fmt in FORMAT_OF.items()
    if fmt is Format.I and op not in (Op.CSRR, Op.CSRW)
]
N_OPS = [op for op, fmt in FORMAT_OF.items() if fmt is Format.N]

#: R-format ops that ignore rs2 (two-operand forms): canonical encodings
#: carry rs2 = 0, which is what the assembler emits.
TWO_OPERAND_R = {Op.MOV, Op.FMOV, Op.FNEG, Op.FSQRT, Op.FCVT, Op.FCVTI}
#: R-format ops that ignore rd.
NO_DEST_R = {Op.CMP, Op.FCMP}
#: Single-register ops.
ONE_OPERAND_R = {Op.BR, Op.BLR}
#: I-format ops that ignore rs1 or rd.
NO_RS1_I = {Op.MOVI, Op.MOVHI}
NO_RD_I = {Op.CMPI}


def reassemble(text: str) -> int:
    assembler = Assembler(text_base=0x1000, data_base=0x2000)
    program = assembler.assemble(f"_start:\n    {text}\n")
    return struct.unpack("<I", program.segment("text").data[:4])[0]


@given(
    op=st.sampled_from(R_OPS),
    rd=st.integers(0, 15),
    rs1=st.integers(0, 15),
    rs2=st.integers(0, 15),
)
def test_r_format_round_trip(op, rd, rs1, rs2):
    if op in TWO_OPERAND_R:
        rs2 = 0
    if op in NO_DEST_R:
        rd = 0
    if op in ONE_OPERAND_R:
        rd = rs2 = 0
    word = encode(op, rd=rd, rs1=rs1, rs2=rs2)
    assert reassemble(disassemble_word(word)) == word


@given(
    op=st.sampled_from(I_OPS),
    rd=st.integers(0, 15),
    rs1=st.integers(0, 15),
    imm=st.integers(-(1 << 15), (1 << 15) - 1),
)
def test_i_format_round_trip(op, rd, rs1, imm):
    if op in NO_RS1_I:
        rs1 = 0
    if op in NO_RD_I:
        rd = 0
    from repro.isa.opcodes import ZERO_EXTENDED_IMM_OPS

    if op in ZERO_EXTENDED_IMM_OPS and imm < 0:
        imm &= 0xFFFF
    word = encode(op, rd=rd, rs1=rs1, imm=imm)
    assert reassemble(disassemble_word(word)) == word


@given(op=st.sampled_from(N_OPS))
def test_n_format_round_trip(op):
    word = encode(op)
    assert reassemble(disassemble_word(word)) == word


def test_csr_round_trip():
    for op, text in ((Op.CSRR, "csrr r3, 1"), (Op.CSRW, "csrw 1, r3")):
        word = reassemble(text)
        assert reassemble(disassemble_word(word)) == word
