"""Exception hierarchy invariants relied on by the run loop and classifier."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in (
            "ConfigurationError",
            "AssemblerError",
            "EncodingError",
            "ArchitecturalFault",
            "SimulationTermination",
            "InjectionError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_architectural_faults_are_not_terminations(self):
        """The run loop must be able to catch faults without swallowing
        terminal outcomes."""
        for fault in (
            errors.IllegalInstruction,
            errors.SegmentationFault,
            errors.AlignmentFault,
            errors.PrivilegeFault,
            errors.ArithmeticFault,
        ):
            assert issubclass(fault, errors.ArchitecturalFault)
            assert not issubclass(fault, errors.SimulationTermination)

    def test_terminations(self):
        for termination in (
            errors.ProgramExit,
            errors.ApplicationAbort,
            errors.KernelPanic,
            errors.WatchdogTimeout,
        ):
            assert issubclass(termination, errors.SimulationTermination)

    def test_cause_codes_unique(self):
        causes = [
            fault.cause
            for fault in (
                errors.IllegalInstruction,
                errors.SegmentationFault,
                errors.AlignmentFault,
                errors.PrivilegeFault,
                errors.ArithmeticFault,
            )
        ]
        assert len(set(causes)) == len(causes)
        assert all(0 < cause < 8 for cause in causes)  # below CAUSE_SYSCALL


class TestPayloads:
    def test_program_exit_status(self):
        assert errors.ProgramExit(3).status == 3

    def test_application_abort_fields(self):
        abort = errors.ApplicationAbort(cause=2, pc=0x1234)
        assert abort.cause == 2 and abort.pc == 0x1234

    def test_kernel_panic_message(self):
        panic = errors.KernelPanic("bad vector", pc=0x40)
        assert "bad vector" in str(panic)

    def test_watchdog_cycles(self):
        assert errors.WatchdogTimeout(99).cycles == 99

    def test_assembler_error_line_prefix(self):
        error = errors.AssemblerError("boom", line=7)
        assert "line 7" in str(error)

    def test_architectural_fault_pc(self):
        fault = errors.SegmentationFault("oops", pc=0x44)
        assert fault.pc == 0x44
