"""Facility model: flux, cross-sections, acceleration, fluence."""

from __future__ import annotations

import pytest

from repro.beam.facility import (
    JESD89A_NYC_FLUX,
    LANSCE,
    MEASURED_FIT_RAW,
    BeamFacility,
)


class TestConstants:
    def test_paper_values(self):
        assert LANSCE.flux == pytest.approx(3.5e5)
        assert JESD89A_NYC_FLUX == 13.0
        assert MEASURED_FIT_RAW == pytest.approx(2.76e-5)

    def test_acceleration_factor_is_about_1e8(self):
        """The paper: beam flux ~8 orders of magnitude above terrestrial."""
        assert 9.0e7 < LANSCE.acceleration_factor < 1.1e8


class TestCrossSection:
    def test_sigma_consistent_with_fit_raw(self):
        # FIT_raw = sigma * flux_NYC * 1e9 by definition.
        reconstructed = LANSCE.sigma_bit * JESD89A_NYC_FLUX * 1e9
        assert reconstructed == pytest.approx(MEASURED_FIT_RAW)

    def test_strike_rate_scales_with_bits(self):
        assert LANSCE.strike_rate(2000) == pytest.approx(
            2 * LANSCE.strike_rate(1000)
        )

    def test_sensitivity_scales_rate(self):
        assert LANSCE.strike_rate(1000, sensitivity=0.5) == pytest.approx(
            0.5 * LANSCE.strike_rate(1000)
        )


class TestExposure:
    def test_fluence(self):
        assert LANSCE.fluence(10.0) == pytest.approx(3.5e6)

    def test_natural_years_of_paper_campaign(self):
        """260 beam hours ~ 2.9 million years (abstract of the paper)."""
        years = LANSCE.natural_years(260 * 3600)
        assert 2.5e6 < years < 3.3e6

    def test_custom_facility(self):
        weak = BeamFacility(name="weak", flux=1e3)
        assert weak.acceleration_factor < LANSCE.acceleration_factor
