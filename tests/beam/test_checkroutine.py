"""The online SDC check routine (beam protocol)."""

from __future__ import annotations

import struct

import pytest

from repro.beam.checkroutine import build_check_program
from repro.errors import ApplicationAbort, ProgramExit
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.microarch.system import GOLDEN_DATA_OFFSET, System


def beam_system(user_assembler, user_source, golden):
    program = user_assembler.assemble(user_source, entry="_start")
    check = build_check_program(DEFAULT_LAYOUT, len(golden))
    return System(
        program, check_program=check, golden_output=golden, beam_mode=True
    )


WRITE_AND_EXIT = """
_start:
    li   r0, 0x04030201
    movi r7, 3
    syscall
    movi r0, 0
    movi r7, 0
    syscall
"""


class TestCheckProgram:
    def test_assembles_into_check_region(self):
        program = build_check_program(DEFAULT_LAYOUT, 16)
        assert program.segment("text").base == DEFAULT_LAYOUT.check_text_base
        assert program.segment("data").base == DEFAULT_LAYOUT.golden_buffer_base

    def test_params_block_holds_pointers(self):
        program = build_check_program(DEFAULT_LAYOUT, 99)
        out_ptr, golden_ptr, length = struct.unpack(
            "<3I", program.segment("data").data[:12]
        )
        assert out_ptr == DEFAULT_LAYOUT.output_buffer_base
        assert golden_ptr == DEFAULT_LAYOUT.golden_buffer_base + GOLDEN_DATA_OFFSET
        assert length == 99


class TestOnlineCheck:
    def test_matching_output_reports_clean(self, user_assembler):
        golden = struct.pack("<I", 0x04030201)
        system = beam_system(user_assembler, WRITE_AND_EXIT, golden)
        result = system.run(max_cycles=5_000_000)
        assert isinstance(result.outcome, ProgramExit)
        assert result.check_done and not result.sdc_flag

    def test_mismatch_detected(self, user_assembler):
        golden = struct.pack("<I", 0x04030202)  # differs in one byte
        system = beam_system(user_assembler, WRITE_AND_EXIT, golden)
        result = system.run(max_cycles=5_000_000)
        assert result.check_done and result.sdc_flag

    def test_short_output_detected(self, user_assembler):
        # Program writes 4 bytes but the golden expects 8: the tail of the
        # output buffer is zero and must mismatch.
        golden = struct.pack("<I", 0x04030201) + b"\x01\x02\x03\x04"
        system = beam_system(user_assembler, WRITE_AND_EXIT, golden)
        result = system.run(max_cycles=5_000_000)
        assert result.check_done and result.sdc_flag

    def test_corrupted_pointer_block_crashes_check(self, user_assembler):
        """A strike on the pointer-holding params block turns the check
        into a wild access - the Application Crash mechanism behind the
        paper's Fig. 7 outliers."""
        golden = struct.pack("<I", 0x04030201)
        system = beam_system(user_assembler, WRITE_AND_EXIT, golden)
        params = DEFAULT_LAYOUT.golden_buffer_base
        # Corrupt the output-buffer pointer's high byte in memory.
        system.memory.data[params + 3] ^= 0x80
        result = system.run(max_cycles=5_000_000)
        assert isinstance(result.outcome, ApplicationAbort)
