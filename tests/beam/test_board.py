"""Board model: outcome distributions and calibration invariants."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.beam.board import ZEDBOARD, BoardModel, BoardModelOutcome
from repro.injection.classify import FaultEffect


class TestDistributions:
    def test_platform_distribution_sums_to_one(self):
        total = sum(p for _e, p in ZEDBOARD.platform_outcomes)
        assert total == pytest.approx(1.0)

    def test_os_line_distribution_sums_to_one(self):
        total = sum(p for _e, p in ZEDBOARD.os_line_outcomes)
        assert total == pytest.approx(1.0)

    def test_platform_outcomes_dominated_by_sys_crash(self):
        """The paper attributes the beam System-Crash excess to platform
        logic; among *error* outcomes, System Crash must dominate."""
        weights = dict(ZEDBOARD.platform_outcomes)
        assert weights[FaultEffect.SYS_CRASH] > weights[FaultEffect.APP_CRASH]
        assert weights[FaultEffect.SYS_CRASH] > weights.get(FaultEffect.SDC, 0)

    def test_os_line_outcomes_dominated_by_sys_crash(self):
        weights = dict(ZEDBOARD.os_line_outcomes)
        assert weights[FaultEffect.SYS_CRASH] > weights[FaultEffect.APP_CRASH]

    def test_sampling_matches_weights(self):
        rng = random.Random(9)
        draws = Counter(
            ZEDBOARD.sample_platform_outcome(rng) for _ in range(20_000)
        )
        for effect, probability in ZEDBOARD.platform_outcomes:
            assert draws[effect] / 20_000 == pytest.approx(probability, abs=0.02)

    def test_sampling_deterministic_per_seed(self):
        a = [ZEDBOARD.sample_os_line_outcome(random.Random(3)) for _ in range(5)]
        b = [ZEDBOARD.sample_os_line_outcome(random.Random(3)) for _ in range(5)]
        assert a == b


class TestBoardModelOutcome:
    def test_carries_effect(self):
        exc = BoardModelOutcome(FaultEffect.SYS_CRASH)
        assert exc.effect is FaultEffect.SYS_CRASH

    def test_custom_board(self):
        board = BoardModel(
            name="custom",
            platform_logic_bits=10,
            platform_sensitivity=1.0,
            platform_outcomes=((FaultEffect.MASKED, 1.0),),
            os_line_outcomes=((FaultEffect.MASKED, 1.0),),
        )
        rng = random.Random(0)
        assert board.sample_platform_outcome(rng) is FaultEffect.MASKED
