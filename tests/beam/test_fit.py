"""FIT arithmetic and counting statistics."""

from __future__ import annotations

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.beam.fit import fit_rate, poisson_interval, sample_poisson
from repro.errors import ConfigurationError


class TestFitRate:
    def test_definition(self):
        # 10 errors over 1e10 n/cm^2 -> sigma = 1e-9 cm^2;
        # FIT = sigma * 13 * 1e9 = 13.
        assert fit_rate(10, 1e10) == pytest.approx(13.0)

    def test_linear_in_errors(self):
        assert fit_rate(20, 1e10) == pytest.approx(2 * fit_rate(10, 1e10))

    def test_zero_errors(self):
        assert fit_rate(0, 1e10) == 0.0

    def test_bad_fluence(self):
        with pytest.raises(ConfigurationError):
            fit_rate(1, 0.0)


class TestPoissonInterval:
    def test_zero_count_lower_bound_is_zero(self):
        low, high = poisson_interval(0)
        assert low == 0.0
        assert 3.0 < high < 4.5  # the classic ~3.7 upper bound

    def test_interval_contains_count(self):
        for count in (1, 5, 20, 100):
            low, high = poisson_interval(count)
            assert low < count < high

    def test_higher_confidence_is_wider(self):
        low95, high95 = poisson_interval(10, 0.95)
        low99, high99 = poisson_interval(10, 0.99)
        assert low99 <= low95 and high99 >= high95

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_interval(-1)


class TestPoissonSampler:
    def test_zero_mean(self):
        rng = random.Random(1)
        assert sample_poisson(rng, 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_poisson(random.Random(1), -1.0)

    @pytest.mark.parametrize("mean", [0.5, 3.0, 12.0, 80.0])
    def test_sample_mean_converges(self, mean):
        rng = random.Random(42)
        draws = [sample_poisson(rng, mean) for _ in range(3000)]
        assert statistics.mean(draws) == pytest.approx(mean, rel=0.1)
        assert statistics.pvariance(draws) == pytest.approx(mean, rel=0.25)

    @given(mean=st.floats(0.0, 200.0))
    @settings(max_examples=50)
    def test_samples_are_nonnegative_ints(self, mean):
        rng = random.Random(7)
        value = sample_poisson(rng, mean)
        assert isinstance(value, int) and value >= 0
