"""FIT arithmetic and counting statistics."""

from __future__ import annotations

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.beam.fit import (
    fit_rate,
    poisson_interval,
    poisson_interval_normal,
    sample_poisson,
)
from repro.injection.sampling import Z_SCORES
from repro.errors import ConfigurationError


class TestFitRate:
    def test_definition(self):
        # 10 errors over 1e10 n/cm^2 -> sigma = 1e-9 cm^2;
        # FIT = sigma * 13 * 1e9 = 13.
        assert fit_rate(10, 1e10) == pytest.approx(13.0)

    def test_linear_in_errors(self):
        assert fit_rate(20, 1e10) == pytest.approx(2 * fit_rate(10, 1e10))

    def test_zero_errors(self):
        assert fit_rate(0, 1e10) == 0.0

    def test_bad_fluence(self):
        with pytest.raises(ConfigurationError):
            fit_rate(1, 0.0)


class TestPoissonInterval:
    def test_zero_count_lower_bound_is_zero(self):
        low, high = poisson_interval(0)
        assert low == 0.0
        assert 3.0 < high < 4.5  # the classic ~3.7 upper bound

    def test_interval_contains_count(self):
        for count in (1, 5, 20, 100):
            low, high = poisson_interval(count)
            assert low < count < high

    def test_higher_confidence_is_wider(self):
        low95, high95 = poisson_interval(10, 0.95)
        low99, high99 = poisson_interval(10, 0.99)
        assert low99 <= low95 and high99 >= high95

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_interval(-1)


class TestPoissonSampler:
    def test_zero_mean(self):
        rng = random.Random(1)
        assert sample_poisson(rng, 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_poisson(random.Random(1), -1.0)

    @pytest.mark.parametrize("mean", [0.5, 3.0, 12.0, 80.0])
    def test_sample_mean_converges(self, mean):
        rng = random.Random(42)
        draws = [sample_poisson(rng, mean) for _ in range(3000)]
        assert statistics.mean(draws) == pytest.approx(mean, rel=0.1)
        assert statistics.pvariance(draws) == pytest.approx(mean, rel=0.25)

    @given(mean=st.floats(0.0, 200.0))
    @settings(max_examples=50)
    def test_samples_are_nonnegative_ints(self, mean):
        rng = random.Random(7)
        value = sample_poisson(rng, mean)
        assert isinstance(value, int) and value >= 0


class TestPoissonFallback:
    """The scipy-less normal-approximation path must be correct on its
    own: right z-score per confidence, exact Garwood bound at zero."""

    def test_zero_count_is_exact_garwood(self):
        from math import log

        low, high = poisson_interval_normal(0, 0.95)
        assert low == 0.0
        assert high == pytest.approx(-log(0.025), rel=1e-9)

    def test_uses_the_right_z_for_090(self):
        # The old fallback looked up z=2.5758 (the 99% score) for 0.90.
        low, high = poisson_interval_normal(100, 0.90)
        assert high == pytest.approx(100 + 1.6449 * 10.0, abs=1e-3)
        assert low == pytest.approx(100 - 1.6449 * 10.0, abs=1e-3)

    def test_z_table_is_shared_with_sampling(self):
        for confidence, z in Z_SCORES.items():
            low, high = poisson_interval_normal(64, confidence)
            assert high == pytest.approx(64 + z * 8.0, abs=1e-9)

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ConfigurationError, match="0.9"):
            poisson_interval_normal(10, 0.42)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_interval_normal(-1)

    def test_poisson_interval_falls_back_without_scipy(self, monkeypatch):
        import sys as _sys

        monkeypatch.setitem(_sys.modules, "scipy", None)
        monkeypatch.setitem(_sys.modules, "scipy.stats", None)
        assert poisson_interval(9, 0.95) == poisson_interval_normal(9, 0.95)
        # count=0 stays exact even on the fallback path.
        assert poisson_interval(0, 0.95) == poisson_interval_normal(0, 0.95)

    def test_fallback_brackets_the_exact_interval_loosely(self):
        pytest.importorskip("scipy")
        low_exact, high_exact = poisson_interval(100, 0.95)
        low_norm, high_norm = poisson_interval_normal(100, 0.95)
        assert low_norm == pytest.approx(low_exact, rel=0.05)
        assert high_norm == pytest.approx(high_exact, rel=0.05)
