"""The warm steady-state beam protocol (back-to-back campaign runs)."""

from __future__ import annotations

import pytest

from repro.beam.experiment import BeamCampaignConfig, BeamExperiment
from repro.microarch.snapshot import SystemSnapshot
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def experiment():
    return BeamExperiment(BeamCampaignConfig(beam_hours=1, seed=0), cache_dir=None)


@pytest.fixture(scope="module", params=["Susan C", "Qsort"])
def warm_state(request, experiment):
    workload = get_workload(request.param)
    golden = workload.reference_output()
    warm_boot, warm_result = experiment._golden_beam_run(workload, golden)
    return workload, golden, warm_boot, warm_result


class TestWarmGolden:
    def test_warm_run_is_clean_and_checked(self, warm_state):
        _w, golden, _boot, warm = warm_state
        assert warm.exited_cleanly
        assert warm.output == golden
        assert warm.check_done and not warm.sdc_flag

    def test_warm_boot_snapshot_at_cycle_zero(self, warm_state):
        _w, _golden, warm_boot, _warm = warm_state
        assert warm_boot.cycle == 0

    def test_warm_boot_replays_identically(self, warm_state, experiment):
        workload, golden, warm_boot, warm = warm_state
        system = experiment._beam_system(workload, golden)
        warm_boot.restore(system)
        replay = system.run(max_cycles=warm.cycles * 3 + 100_000)
        assert replay.exited_cleanly
        assert replay.output == golden
        assert replay.cycles == warm.cycles

    def test_warm_run_not_slower_than_twice_cold(self, warm_state, experiment):
        """Guards against pathological warm-state behaviour (e.g. the
        quicksort sorted-input worst case this protocol once exposed)."""
        workload, golden, _boot, warm = warm_state
        cold_system = experiment._beam_system(workload, golden)
        cold = cold_system.run(max_cycles=200_000_000)
        assert warm.cycles < cold.cycles * 2

    def test_steady_state_differs_from_cold_boot(self, warm_state, experiment):
        """The warm machine's cache content reflects the workload, not
        (only) the prefill: a fresh beam system differs from the warm boot."""
        workload, golden, warm_boot, _warm = warm_state
        fresh = experiment._beam_system(workload, golden)
        fresh_snapshot = SystemSnapshot(fresh)
        warm_l2 = warm_boot._caches["l2"].lines
        fresh_l2 = fresh_snapshot._caches["l2"].lines
        differing = sum(1 for a, b in zip(warm_l2, fresh_l2) if a[0] != b[0])
        assert differing > 0  # at least some tags replaced by the warm run
