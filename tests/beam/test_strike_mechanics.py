"""Targeted beam-strike mechanisms: the three divergence channels.

Each test places a strike by hand where one of the paper's explanations
predicts a specific outcome, and checks the machine delivers it.
"""

from __future__ import annotations

import random

import pytest

from repro.beam.experiment import BeamCampaignConfig, BeamExperiment
from repro.injection.classify import FaultEffect
from repro.injection.components import Component
from repro.microarch.system import GOLDEN_DATA_OFFSET
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def experiment():
    return BeamExperiment(BeamCampaignConfig(beam_hours=1, seed=1), cache_dir=None)


@pytest.fixture(scope="module")
def susan(experiment):
    workload = get_workload("Susan C")
    golden = workload.reference_output()
    warm_boot, warm = experiment._golden_beam_run(workload, golden)
    return workload, golden, warm_boot, warm


def strike_line_in_region(experiment, susan, cache_name, region, payload_bit=3):
    """Find a bit of a warm cache line tagged to ``region`` and strike it."""
    workload, golden, warm_boot, warm = susan
    system = experiment._beam_system(workload, golden)
    warm_boot.restore(system)
    cache = getattr(system, cache_name)
    layout = system.layout
    for bit in range(0, cache.data_bits, cache.line_size * 8):
        line = cache.line_at(bit)
        if line.valid and layout.region_of(cache.line_base_paddr(bit)) == region:
            return bit + payload_bit
    return None


class TestOSResidencyChannel:
    def test_warm_l2_holds_os_background_lines(self, experiment, susan):
        bit = strike_line_in_region(experiment, susan, "l2", "os_background")
        assert bit is not None  # Susan C leaves OS lines resident

    def test_os_line_strike_resolved_by_board_model(self, experiment, susan):
        workload, golden, _boot, warm = susan
        bit = strike_line_in_region(experiment, susan, "l2", "os_background")
        rng = random.Random(0)
        outcomes = {
            experiment._strike_effect(
                workload, golden, Component.L2,
                bit_index=bit, cycle=warm.cycles // 2,
                budget=warm.cycles * 3, rng=rng,
            )
            for _ in range(12)
        }
        # Sampled from the ZEDBOARD os-line distribution: only its classes.
        assert outcomes <= {
            FaultEffect.SYS_CRASH, FaultEffect.APP_CRASH, FaultEffect.MASKED
        }
        assert FaultEffect.SYS_CRASH in outcomes


class TestCheckRoutineChannel:
    def test_corrupt_golden_copy_reports_false_sdc(self, experiment, susan):
        """A strike on the in-memory golden data makes the online check
        disagree with a *correct* output - logged as SDC, an artifact the
        beam protocol genuinely has."""
        workload, golden, warm_boot, warm = susan
        system = experiment._beam_system(workload, golden)
        warm_boot.restore(system)
        golden_addr = system.layout.golden_buffer_base + GOLDEN_DATA_OFFSET

        def corrupt_golden():
            system.memory.data[golden_addr] ^= 0xFF
            system.l1d.invalidate_all()
            system.l2.invalidate_all()

        result = system.run(
            max_cycles=warm.cycles * 3 + 100_000,
            events=[(warm.cycles // 2, corrupt_golden)],
        )
        assert result.exited_cleanly
        assert result.sdc_flag  # the check fired on a clean output

    def test_corrupt_check_code_crashes_the_check(self, experiment, susan):
        workload, golden, warm_boot, warm = susan
        system = experiment._beam_system(workload, golden)
        warm_boot.restore(system)
        check_entry = system.layout.check_text_base

        def corrupt_check():
            for offset in range(0, 32, 4):
                system.memory.data[check_entry + offset] = 0x00
            system.l1i.invalidate_all()
            system.l2.invalidate_all()

        result = system.run(
            max_cycles=warm.cycles * 3 + 100_000,
            events=[(warm.cycles // 2, corrupt_check)],
        )
        from repro.errors import ApplicationAbort

        assert isinstance(result.outcome, ApplicationAbort)


class TestPlatformChannel:
    def test_platform_strike_counts_scale_with_exposure(self):
        """Doubling beam time roughly doubles sampled platform strikes."""
        from repro.beam.facility import LANSCE
        from repro.beam.board import ZEDBOARD
        from repro.beam.fit import sample_poisson

        rate = LANSCE.strike_rate(
            ZEDBOARD.platform_logic_bits, ZEDBOARD.platform_sensitivity
        )
        rng = random.Random(5)
        short = sum(sample_poisson(rng, rate * 100 * 3600) for _ in range(30))
        long = sum(sample_poisson(rng, rate * 200 * 3600) for _ in range(30))
        assert long == pytest.approx(2 * short, rel=0.3)
