"""Beam experiment protocol: live micro-campaign and serialization."""

from __future__ import annotations

import json

import pytest

from repro.beam.experiment import BeamCampaignConfig, BeamExperiment, BeamResult
from repro.injection.classify import FaultEffect
from repro.workloads import get_workload


class TestBeamResult:
    def make(self, counts):
        return BeamResult(
            workload_name="X",
            beam_seconds=3600.0,
            fluence=3.5e5 * 3600,
            golden_cycles=100_000,
            counts=counts,
        )

    def test_fit_zero_without_errors(self):
        result = self.make({})
        assert result.fit(FaultEffect.SDC) == 0.0

    def test_fit_scales_with_count(self):
        one = self.make({FaultEffect.SDC: 1})
        ten = self.make({FaultEffect.SDC: 10})
        assert ten.fit(FaultEffect.SDC) == pytest.approx(
            10 * one.fit(FaultEffect.SDC)
        )

    def test_total_fit_sums_error_classes(self):
        result = self.make(
            {
                FaultEffect.SDC: 1,
                FaultEffect.APP_CRASH: 2,
                FaultEffect.SYS_CRASH: 3,
                FaultEffect.MASKED: 100,
            }
        )
        expected = sum(
            result.fit(effect)
            for effect in (
                FaultEffect.SDC,
                FaultEffect.APP_CRASH,
                FaultEffect.SYS_CRASH,
            )
        )
        assert result.total_fit() == pytest.approx(expected)
        # Masked events contribute nothing.
        assert result.total_fit() == pytest.approx(
            result.fit(FaultEffect.SDC) * 6
        )

    def test_interval_brackets_estimate(self):
        result = self.make({FaultEffect.SDC: 9})
        low, high = result.fit_interval(FaultEffect.SDC)
        assert low < result.fit(FaultEffect.SDC) < high

    def test_detection_limit_is_half_an_event(self):
        result = self.make({})
        one_event = self.make({FaultEffect.SDC: 1}).fit(FaultEffect.SDC)
        assert result.detection_limit_fit() == pytest.approx(one_event / 2)

    def test_round_trip(self):
        result = self.make({FaultEffect.SYS_CRASH: 4})
        clone = BeamResult.from_dict(result.to_dict())
        assert clone.fit(FaultEffect.SYS_CRASH) == pytest.approx(
            result.fit(FaultEffect.SYS_CRASH)
        )


@pytest.mark.slow
class TestLiveBeamCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("beamcache")
        experiment = BeamExperiment(
            BeamCampaignConfig(beam_hours=25, seed=2), cache_dir=cache_dir
        )
        result = experiment.run_workload(get_workload("Susan C"))
        return experiment, cache_dir, result

    def test_strikes_sampled_and_classified(self, campaign):
        _experiment, _cache_dir, result = campaign
        assert result.strikes_simulated > 0
        assert result.platform_strikes > 0
        total_classified = sum(result.counts.values())
        assert total_classified == result.strikes_simulated + result.platform_strikes

    def test_exposure_accounting(self, campaign):
        _experiment, _cache_dir, result = campaign
        assert result.beam_seconds == 25 * 3600
        assert result.fluence == pytest.approx(3.5e5 * result.beam_seconds)
        assert result.natural_years > 0

    def test_cache_reused(self, campaign):
        experiment, cache_dir, result = campaign
        files = list(cache_dir.glob("beam-*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["workload"] == "Susan C"
        again = experiment.run_workload(get_workload("Susan C"))
        assert again.to_dict() == result.to_dict()
