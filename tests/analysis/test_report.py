"""ASCII renderers."""

from __future__ import annotations

from repro.analysis.report import bar_chart, format_table, signed_bar_chart


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("A", "Blong"), [("x", 1), ("ylong", 22)])
        lines = table.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        table = format_table(("A",), [("x",)], title="My title")
        assert table.splitlines()[0] == "My title"

    def test_cells_stringified(self):
        table = format_table(("A",), [(3.5,), (None,)])
        assert "3.5" in table and "None" in table


class TestBarChart:
    def test_lengths_proportional(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        line_a, line_b = chart.splitlines()
        assert line_a.count("#") == 20
        assert line_b.count("#") == 10

    def test_log_scale_compresses(self):
        linear = bar_chart([("a", 100.0), ("b", 1.0)], width=20)
        logarithmic = bar_chart([("a", 100.0), ("b", 1.0)], width=20, log_scale=True)
        assert logarithmic.splitlines()[1].count("#") > linear.splitlines()[1].count(
            "#"
        )

    def test_empty(self):
        assert bar_chart([], title="t") == "t"

    def test_all_zero(self):
        chart = bar_chart([("a", 0.0)])
        assert "#" not in chart


class TestSignedBarChart:
    def test_direction(self):
        chart = signed_bar_chart([("pos", 10.0), ("neg", -10.0)], width=10)
        pos_line = next(line for line in chart.splitlines() if "pos" in line)
        neg_line = next(line for line in chart.splitlines() if "neg" in line)
        pos_left, pos_right = pos_line.split("|")[1:]
        neg_left, neg_right = neg_line.split("|")[1:]
        assert "#" in pos_right and "#" not in pos_left
        assert "#" in neg_left and "#" not in neg_right

    def test_values_annotated(self):
        chart = signed_bar_chart([("a", 4.0)])
        assert "+4.00x" in chart

    def test_title_adds_axis_legend(self):
        chart = signed_bar_chart([("a", 1.0)], title="T")
        assert "beam higher" in chart
