"""AVF -> FIT conversion and AVF aggregation."""

from __future__ import annotations

import pytest

from repro.analysis.avf import avf_breakdown
from repro.analysis.fit_model import injection_fit
from repro.injection.campaign import ComponentResult, WorkloadResult
from repro.injection.classify import FaultEffect
from repro.injection.components import Component


def make_workload_result() -> WorkloadResult:
    result = WorkloadResult(workload_name="X", golden_cycles=1000)
    result.components[Component.L2] = ComponentResult(
        component=Component.L2,
        injections=100,
        population_bits=131072,
        counts={
            FaultEffect.MASKED: 80,
            FaultEffect.SDC: 10,
            FaultEffect.APP_CRASH: 6,
            FaultEffect.SYS_CRASH: 4,
        },
    )
    result.components[Component.ITLB] = ComponentResult(
        component=Component.ITLB,
        injections=100,
        population_bits=4096,
        counts={FaultEffect.MASKED: 50, FaultEffect.SDC: 50},
    )
    return result


class TestInjectionFIT:
    def test_formula(self):
        fits = injection_fit(make_workload_result(), fit_raw=1e-5)
        # L2 SDC: 1e-5 * 131072 * 0.10; ITLB SDC: 1e-5 * 4096 * 0.5
        expected_sdc = 1e-5 * 131072 * 0.10 + 1e-5 * 4096 * 0.5
        assert fits.sdc == pytest.approx(expected_sdc)
        assert fits.app_crash == pytest.approx(1e-5 * 131072 * 0.06)
        assert fits.sys_crash == pytest.approx(1e-5 * 131072 * 0.04)

    def test_total(self):
        fits = injection_fit(make_workload_result(), fit_raw=1e-5)
        assert fits.total == pytest.approx(
            fits.sdc + fits.app_crash + fits.sys_crash
        )

    def test_by_component_sums_to_totals(self):
        fits = injection_fit(make_workload_result(), fit_raw=1e-5)
        per_class = {effect: 0.0 for effect in (
            FaultEffect.SDC, FaultEffect.APP_CRASH, FaultEffect.SYS_CRASH
        )}
        for cell in fits.by_component.values():
            for effect, value in cell.items():
                per_class[effect] += value
        assert per_class[FaultEffect.SDC] == pytest.approx(fits.sdc)

    def test_detection_limit_reflects_biggest_component(self):
        fits = injection_fit(make_workload_result(), fit_raw=1e-5)
        assert fits.detection_limit == pytest.approx(1e-5 * 131072 / 100 / 2)

    def test_fit_raw_scales_linearly(self):
        small = injection_fit(make_workload_result(), fit_raw=1e-5)
        large = injection_fit(make_workload_result(), fit_raw=2e-5)
        assert large.sdc == pytest.approx(2 * small.sdc)


class TestAVFBreakdown:
    def test_rows_per_component(self):
        rows = avf_breakdown(make_workload_result())
        assert {row.component for row in rows} == {Component.L2, Component.ITLB}

    def test_breakdown_values(self):
        rows = avf_breakdown(make_workload_result())
        l2 = next(row for row in rows if row.component is Component.L2)
        assert l2.sdc == pytest.approx(0.10)
        assert l2.app_crash == pytest.approx(0.06)
        assert l2.sys_crash == pytest.approx(0.04)
        assert l2.masked == pytest.approx(0.80)
        assert l2.avf == pytest.approx(0.20)
