"""Beam-vs-injection comparison logic (Figures 6-10)."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    ComparisonRow,
    compare_class,
    compare_combined,
    overview_aggregate,
    signed_ratio,
)
from repro.analysis.fit_model import InjectionFIT
from repro.beam.experiment import BeamResult
from repro.injection.classify import FaultEffect


def beam_result(name, sdc=0, app=0, sys_=0) -> BeamResult:
    return BeamResult(
        workload_name=name,
        beam_seconds=3600.0,
        fluence=1e9,
        golden_cycles=1,
        counts={
            FaultEffect.SDC: sdc,
            FaultEffect.APP_CRASH: app,
            FaultEffect.SYS_CRASH: sys_,
        },
    )


def injection(name, sdc=0.0, app=0.0, sys_=0.0) -> InjectionFIT:
    return InjectionFIT(
        workload=name,
        sdc=sdc,
        app_crash=app,
        sys_crash=sys_,
        by_component={},
        detection_limit=0.05,
    )


class TestSignedRatio:
    def test_beam_higher_is_positive(self):
        assert signed_ratio(10.0, 2.0) == pytest.approx(5.0)

    def test_injection_higher_is_negative(self):
        assert signed_ratio(2.0, 10.0) == pytest.approx(-5.0)

    def test_equal_is_one(self):
        assert signed_ratio(3.0, 3.0) == pytest.approx(1.0)

    def test_zero_beam_floored_at_detection_limit(self):
        ratio = signed_ratio(0.0, 1.0, beam_floor=0.1, injection_floor=0.01)
        assert ratio == pytest.approx(-10.0)

    def test_zero_both_is_unity_scale(self):
        ratio = signed_ratio(0.0, 0.0, beam_floor=0.1, injection_floor=0.1)
        assert abs(ratio) == pytest.approx(1.0)


class TestComparisonRow:
    def test_detection_limit_flag(self):
        row = ComparisonRow("X", beam_fit=0.0, injection_fit=1.0)
        assert row.at_detection_limit
        row = ComparisonRow("X", beam_fit=1.0, injection_fit=1.0)
        assert not row.at_detection_limit


class TestCompareClass:
    def test_rows_cover_all_workloads(self):
        beam = {"A": beam_result("A", sdc=2), "B": beam_result("B", sdc=4)}
        fits = {"A": injection("A", sdc=1.0), "B": injection("B", sdc=100.0)}
        rows = compare_class(beam, fits, FaultEffect.SDC)
        assert [row.workload for row in rows] == ["A", "B"]
        assert rows[0].beam_higher
        assert not rows[1].beam_higher

    def test_combined_sums_classes(self):
        beam = {"A": beam_result("A", sdc=1, app=1)}
        fits = {"A": injection("A", sdc=1.0, app=1.0)}
        rows = compare_combined(beam, fits)
        expected = beam["A"].fit(FaultEffect.SDC) + beam["A"].fit(
            FaultEffect.APP_CRASH
        )
        assert rows[0].beam_fit == pytest.approx(expected)
        assert rows[0].injection_fit == pytest.approx(2.0)


class TestOverview:
    def test_three_cumulative_stages(self):
        beam = {"A": beam_result("A", sdc=1, app=2, sys_=4)}
        fits = {"A": injection("A", sdc=1.0, app=0.5, sys_=0.1)}
        bars = overview_aggregate(beam, fits)
        assert len(bars) == 3
        labels = [bar.label for bar in bars]
        assert labels[0] == "SDC"
        assert "SysCrash" in labels[2]
        # Cumulative means are non-decreasing.
        assert bars[0].beam_mean_fit <= bars[1].beam_mean_fit <= bars[2].beam_mean_fit
        assert (
            bars[0].injection_mean_fit
            <= bars[1].injection_mean_fit
            <= bars[2].injection_mean_fit
        )

    def test_suite_averaging(self):
        beam = {
            "A": beam_result("A", sdc=2),
            "B": beam_result("B", sdc=4),
        }
        fits = {
            "A": injection("A", sdc=1.0),
            "B": injection("B", sdc=3.0),
        }
        bars = overview_aggregate(beam, fits)
        expected_beam = (
            beam["A"].fit(FaultEffect.SDC) + beam["B"].fit(FaultEffect.SDC)
        ) / 2
        assert bars[0].beam_mean_fit == pytest.approx(expected_beam)
        assert bars[0].injection_mean_fit == pytest.approx(2.0)
