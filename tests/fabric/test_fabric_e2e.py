"""Fabric end-to-end: distributed == serial, per fault and per tally.

Acceptance scenarios from the fault-farm correctness sweep:

- a campaign sharded over two workers produces per-fault effects and
  final tallies bit-identical to a serial ``jobs=1`` run;
- a coordinator that dies mid-campaign (server torn down without any
  cleanup, new coordinator pointed at the same store/journals) resumes
  with zero duplicated injections;
- a second campaign over a longer prefix of the same fault stream
  reuses every completed fault from the first (identity dedup).

Everything runs in-process on threads; the subprocess/SIGKILL flavor
lives in ``test_cli_smoke.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.fabric.client import FabricClient
from repro.fabric.protocol import CampaignSpec
from repro.fabric.coordinator import Coordinator, create_server
from repro.fabric.store import FaultStore
from repro.fabric.worker import FabricWorker
from repro.injection.campaign import (
    CampaignConfig,
    build_fault_plan,
    prepare_image,
)
from repro.injection.components import Component, component_bits
from repro.injection.journal import read_journal
from repro.injection.parallel import run_injection_plan
from repro.injection.telemetry import CampaignTelemetry
from repro.workloads import get_workload

WORKLOAD = "StringSearch"
COMPONENTS = (Component.REGFILE, Component.DTLB)
FAULTS = 6


@pytest.fixture(scope="module")
def workload():
    return get_workload(WORKLOAD)


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(faults_per_component=FAULTS, seed=11)


@pytest.fixture(scope="module")
def serial(workload, config):
    """Ground truth: golden run, image, plan and serial effects."""
    golden, image = prepare_image(workload, config)
    plan = build_fault_plan(config, golden.cycles, COMPONENTS)
    effects = run_injection_plan(image, plan, jobs=1)
    return {"golden": golden, "plan": plan, "effects": effects}


class _Fabric:
    """One in-process coordinator + HTTP server on a private store."""

    def __init__(self, tmp_path, telemetry=None):
        self.tmp_path = tmp_path
        self.telemetry = telemetry
        self.coordinator = None
        self.server = None
        self.url = None
        self.start()

    def start(self):
        self.coordinator = Coordinator(
            FaultStore(self.tmp_path / "faults.sqlite"),
            self.tmp_path / "journals",
            lease_size=2,
            telemetry=self.telemetry,
        )
        self.server = create_server(self.coordinator)
        self.url = f"http://127.0.0.1:{self.server.server_address[1]}"
        threading.Thread(target=self.server.serve_forever, daemon=True).start()

    def kill(self):
        """Tear down the HTTP server with *no* coordinator cleanup -
        the in-process approximation of a SIGKILL (the store committed
        everything; open fds just leak until the test ends)."""
        self.server.shutdown()
        self.server.server_close()

    def stop(self):
        self.kill()
        self.coordinator.close()


def run_client_and_workers(
    fabric, workload, config, worker_count=2, client=None
):
    """Drive one campaign to completion; returns (result, workers)."""
    client = client or FabricClient(fabric.url, poll_interval=0.05)
    box = {}

    def submit():
        box["result"] = client.run_workload(workload, config, COMPONENTS)

    client_thread = threading.Thread(target=submit)
    client_thread.start()
    workers = [
        FabricWorker(fabric.url, name=f"w{index}", poll_interval=0.05)
        for index in range(worker_count)
    ]
    worker_threads = [
        threading.Thread(target=worker.run, kwargs={"max_idle_polls": 40})
        for worker in workers
    ]
    for thread in worker_threads:
        thread.start()
    client_thread.join(timeout=300)
    for thread in worker_threads:
        thread.join(timeout=60)
    assert "result" in box, "client never received a result"
    return box["result"], workers


class TestDistributedEqualsSerial:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory, workload, config, serial):
        telemetry = CampaignTelemetry()
        fabric = _Fabric(
            tmp_path_factory.mktemp("fabric"), telemetry=telemetry
        )
        result, workers = run_client_and_workers(fabric, workload, config)
        yield {
            "result": result,
            "workers": workers,
            "fabric": fabric,
            "telemetry": telemetry,
        }
        fabric.stop()

    def test_tallies_are_bit_identical_to_serial(
        self, outcome, config, serial
    ):
        result = outcome["result"]
        for component in COMPONENTS:
            counts = {}
            for effect in serial["effects"][component]:
                counts[effect] = counts.get(effect, 0) + 1
            tally = result.components[component]
            assert tally.counts == counts
            assert tally.injections == FAULTS
            assert tally.population_bits == component_bits(
                config.machine, component
            )
            assert tally.quarantined == 0
        assert result.golden_cycles == serial["golden"].cycles

    def test_per_fault_effects_match_serial(self, outcome, serial):
        """Stronger than tally equality: every journaled fault's effect
        equals the serial run's effect at the same index."""
        journals = list(
            (outcome["fabric"].tmp_path / "journals").glob("*.jsonl")
        )
        assert len(journals) == 1
        _meta, records, quarantines = read_journal(journals[0])
        assert quarantines == []
        by_fault = {
            (record.component, record.index): record for record in records
        }
        for component in COMPONENTS:
            for index, effect in enumerate(serial["effects"][component]):
                record = by_fault.pop((component, index))
                assert record.effect is effect
                fault = serial["plan"][component][index]
                assert record.bit_index == fault.bit_index
                assert record.cycle == fault.cycle
        assert not by_fault, f"extra journal records: {sorted(by_fault)}"

    def test_no_fault_was_executed_twice(self, outcome):
        executed = sum(worker.executed for worker in outcome["workers"])
        assert executed == FAULTS * len(COMPONENTS)

    def test_both_workers_participated(self, outcome):
        # Not a determinism property - just evidence the fan-out fanned
        # out (each worker had time to lease at least one window).
        assert all(worker.executed > 0 for worker in outcome["workers"])

    def test_telemetry_credits_workers(self, outcome):
        telemetry = outcome["telemetry"]
        assert sum(telemetry.fabric_workers.values()) == FAULTS * len(
            COMPONENTS
        )
        assert set(telemetry.fabric_workers) <= {"w0", "w1"}
        summary = telemetry.summary()
        assert summary["fabric_workers"] == telemetry.fabric_workers

    def test_status_reports_completion(self, outcome):
        coordinator = outcome["fabric"].coordinator
        status = coordinator.status()
        (campaign_status,) = status["campaigns"].values()
        assert campaign_status["complete"]
        assert status["executed_total"] == FAULTS * len(COMPONENTS)
        assert set(status["workers"]) == {"w0", "w1"}


class TestCoordinatorKillAndResume:
    def test_restart_resumes_with_zero_duplicates(
        self, tmp_path, workload, config, serial
    ):
        fabric = _Fabric(tmp_path)
        client = FabricClient(fabric.url, poll_interval=0.05, patience=60.0)

        # Phase 1: one worker executes a couple of windows, then the
        # coordinator "dies" (no cleanup at all).
        early = FabricWorker(fabric.url, name="early", poll_interval=0.05)
        summary = client.submit(
            CampaignSpec.from_config(
                workload.name, config, serial["golden"].cycles, COMPONENTS
            )
        )
        campaign_id = summary["campaign_id"]
        assert early.run(max_windows=2) > 0
        done_before = fabric.coordinator.store.executed_total()
        assert 0 < done_before < FAULTS * len(COMPONENTS)
        fabric.kill()

        # Phase 2: a fresh coordinator on the same store and journal dir
        # (as after a SIGKILL + restart) finishes the campaign.
        restarted = _Fabric(tmp_path)
        result, workers = run_client_and_workers(
            restarted,
            workload,
            config,
            client=FabricClient(restarted.url, poll_interval=0.05),
        )
        executed_after = sum(worker.executed for worker in workers)
        assert early.executed + executed_after == FAULTS * len(COMPONENTS), (
            "restart re-executed already-completed faults"
        )
        # Identity: the resumed campaign is the same campaign.
        assert restarted.coordinator.status(campaign_id)["complete"]
        for component in COMPONENTS:
            counts = {}
            for effect in serial["effects"][component]:
                counts[effect] = counts.get(effect, 0) + 1
            assert result.components[component].counts == counts
        restarted.stop()


class TestCrossCampaignDedup:
    def test_longer_campaign_reuses_completed_prefix(
        self, tmp_path, workload, serial
    ):
        short_config = CampaignConfig(faults_per_component=3, seed=11)
        long_config = CampaignConfig(faults_per_component=FAULTS, seed=11)
        fabric = _Fabric(tmp_path)

        short_result, short_workers = run_client_and_workers(
            fabric, workload, short_config, worker_count=1
        )
        executed_short = sum(worker.executed for worker in short_workers)
        assert executed_short == 3 * len(COMPONENTS)

        long_result, long_workers = run_client_and_workers(
            fabric, workload, long_config, worker_count=1
        )
        executed_long = sum(worker.executed for worker in long_workers)
        # Only the new tail ran: indices [3, 6) of each component.
        assert executed_long == (FAULTS - 3) * len(COMPONENTS)

        for component in COMPONENTS:
            counts = {}
            for effect in serial["effects"][component]:
                counts[effect] = counts.get(effect, 0) + 1
            assert long_result.components[component].counts == counts
            short_counts = {}
            for effect in serial["effects"][component][:3]:
                short_counts[effect] = short_counts.get(effect, 0) + 1
            assert short_result.components[component].counts == short_counts
        fabric.stop()
