"""Fault store: identity dedup, lease exclusivity, crash durability.

The satellite property tests live here: same fault identity registered
by two concurrent campaigns yields exactly one row, and no interleaving
of lease / complete / expiry operations ever hands the same index to
two live leases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.protocol import FabricError
from repro.fabric.store import (
    DONE,
    FaultStore,
    LEASED,
    PENDING,
    QUARANTINED,
)
from repro.injection.components import Component
from repro.injection.fault import Fault

BASE = {"workload": "CRC32", "machine": "aa" * 8, "cluster": 1, "seed": 7}
OTHER_BASE = {**BASE, "seed": 8}


def make_faults(count: int, component=Component.L1D) -> list[Fault]:
    return [
        Fault(component=component, bit_index=13 * index, cycle=100 + index)
        for index in range(count)
    ]


def make_store() -> FaultStore:
    # A controllable clock so lease-expiry tests don't sleep.
    clock = {"now": 0.0}
    store = FaultStore(":memory:", clock=lambda: clock["now"])
    store.test_clock = clock  # type: ignore[attr-defined]
    return store


def payload_for(index: int) -> dict:
    return {
        "type": "injection",
        "component": "L1D",
        "index": index,
        "bit": 13 * index,
        "cycle": 100 + index,
        "effect": "MASKED",
        "wall": 0.1,
        "ended": "full",
    }


class TestRegistrationDedup:
    def test_second_registration_inserts_nothing(self):
        store = make_store()
        faults = make_faults(10)
        assert store.register(BASE, "L1D", faults) == 10
        assert store.register(BASE, "L1D", faults) == 0
        counts = store.counts(BASE, {"L1D": 10})
        assert counts[PENDING] == 10 and sum(counts.values()) == 10

    def test_longer_campaign_extends_the_shared_prefix(self):
        store = make_store()
        faults = make_faults(12)
        store.register(BASE, "L1D", faults[:5])
        assert store.register(BASE, "L1D", faults) == 7  # only the new tail

    def test_completed_rows_survive_re_registration(self):
        store = make_store()
        faults = make_faults(3)
        store.register(BASE, "L1D", faults)
        assert store.complete(
            BASE, "L1D", 1, {**payload_for(1), "effect": "SDC"},
            "SDC", "full", 0.2, worker="w",
        )
        store.register(BASE, "L1D", faults)  # a second campaign submits
        rows = store.records(BASE, "L1D", 3)
        assert [(index, status) for index, status, _p, _r in rows] == [
            (1, DONE)
        ]
        assert rows[0][2]["effect"] == "SDC"

    def test_different_identity_does_not_collide(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(4))
        store.register(OTHER_BASE, "L1D", make_faults(4))
        assert store.counts(BASE, {"L1D": 4})[PENDING] == 4
        assert store.counts(OTHER_BASE, {"L1D": 4})[PENDING] == 4

    def test_coordinate_drift_under_one_identity_is_an_error(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(4))
        drifted = [
            Fault(component=Component.L1D, bit_index=fault.bit_index + 1,
                  cycle=fault.cycle)
            for fault in make_faults(4)
        ]
        with pytest.raises(FabricError, match="drift"):
            store.register(BASE, "L1D", drifted)

    @settings(max_examples=50, deadline=None)
    @given(
        first=st.integers(min_value=1, max_value=30),
        second=st.integers(min_value=1, max_value=30),
    )
    def test_property_two_campaigns_one_row_per_identity(self, first, second):
        """Same identity from two concurrent campaigns -> one row each."""
        store = make_store()
        faults = make_faults(max(first, second))
        new_first = store.register(BASE, "L1D", faults[:first])
        new_second = store.register(BASE, "L1D", faults[:second])
        assert new_first == first
        assert new_second == max(0, second - first)
        counts = store.counts(BASE, {"L1D": max(first, second)})
        assert sum(counts.values()) == max(first, second)
        store.close()


class TestLeases:
    def test_lease_is_a_contiguous_pending_prefix(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(10))
        lease = store.lease(BASE, {"L1D": 10}, "w1", count=4, ttl=60)
        assert (lease.component, lease.start, lease.stop) == ("L1D", 0, 4)
        counts = store.counts(BASE, {"L1D": 10})
        assert counts[LEASED] == 4 and counts[PENDING] == 6

    def test_second_worker_gets_the_next_window(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(10))
        first = store.lease(BASE, {"L1D": 10}, "w1", count=4, ttl=60)
        second = store.lease(BASE, {"L1D": 10}, "w2", count=4, ttl=60)
        assert (first.start, first.stop) == (0, 4)
        assert (second.start, second.stop) == (4, 8)

    def test_drained_store_leases_nothing(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(2))
        store.lease(BASE, {"L1D": 2}, "w1", count=2, ttl=60)
        assert store.lease(BASE, {"L1D": 2}, "w2", count=2, ttl=60) is None

    def test_scope_limit_hides_larger_campaigns_rows(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(10))
        lease = store.lease(BASE, {"L1D": 3}, "w1", count=8, ttl=60)
        assert (lease.start, lease.stop) == (0, 3)

    def test_expired_lease_is_reclaimed_and_reissued(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(4))
        store.lease(BASE, {"L1D": 4}, "w1", count=4, ttl=60)
        assert store.lease(BASE, {"L1D": 4}, "w2", count=4, ttl=60) is None
        store.test_clock["now"] = 61.0
        reissued = store.lease(BASE, {"L1D": 4}, "w2", count=4, ttl=60)
        assert (reissued.start, reissued.stop) == (0, 4)
        assert reissued.lease_id != ""

    @settings(max_examples=60, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(["lease", "complete", "expire"]),
                st.integers(min_value=0, max_value=11),
            ),
            max_size=30,
        )
    )
    def test_property_no_index_in_two_live_leases(self, steps):
        """Random lease/complete/expiry interleavings never double-lease.

        After every operation, the live leases (non-expired ``leased``
        rows) must partition their indices: each index appears in at
        most one lease, and completed/quarantined rows appear in none.
        """
        total = 12
        store = make_store()
        store.register(BASE, "L1D", make_faults(total))
        issued = 0
        for action, value in steps:
            if action == "lease":
                lease = store.lease(
                    BASE,
                    {"L1D": total},
                    f"w{issued}",
                    count=max(1, value % 5),
                    ttl=10.0,
                )
                issued += 1 if lease else 0
            elif action == "complete":
                store.complete(
                    BASE, "L1D", value, payload_for(value),
                    "MASKED", "full", 0.1, worker="w",
                )
            else:  # expire: advance time past every outstanding TTL
                store.test_clock["now"] += 11.0
            live = store.live_leases()
            indices = [index for _lease, _comp, index in live]
            assert len(indices) == len(set(indices)), (
                f"index double-leased after {action}: {live}"
            )
            by_lease = {}
            for lease_id, _comp, index in live:
                by_lease.setdefault(lease_id, []).append(index)
            for lease_id, members in by_lease.items():
                terminal = {
                    index
                    for index, status, _p, _r in store.records(
                        BASE, "L1D", total
                    )
                }
                assert not terminal & set(members), (
                    f"terminal row still leased: {lease_id} {members}"
                )
        store.close()


class TestCompletion:
    def test_first_completion_wins(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(2))
        assert store.complete(
            BASE, "L1D", 0, payload_for(0), "MASKED", "full", 0.1, worker="a"
        )
        # A stale report after a lease expiry changes nothing.
        assert not store.complete(
            BASE, "L1D", 0, payload_for(0), "SDC", "full", 0.1, worker="b"
        )
        rows = store.records(BASE, "L1D", 2)
        assert rows[0][2]["effect"] == "MASKED"

    def test_quarantine_is_terminal_too(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(1))
        assert store.quarantine(
            BASE, "L1D", 0, {"type": "quarantine"}, "worker died", worker="a"
        )
        assert not store.complete(
            BASE, "L1D", 0, payload_for(0), "MASKED", "full", 0.1, worker="b"
        )
        rows = store.records(BASE, "L1D", 1)
        assert rows[0][1] == QUARANTINED and rows[0][3] == "worker died"

    def test_records_come_back_in_index_order(self):
        store = make_store()
        store.register(BASE, "L1D", make_faults(5))
        for index in (3, 0, 4, 1, 2):
            store.complete(
                BASE, "L1D", index, payload_for(index),
                "MASKED", "full", 0.1, worker="w",
            )
        rows = store.records(BASE, "L1D", 5)
        assert [index for index, _s, _p, _r in rows] == [0, 1, 2, 3, 4]


class TestDurability:
    def test_store_survives_reopen(self, tmp_path):
        path = tmp_path / "faults.sqlite"
        store = FaultStore(path)
        store.register(BASE, "L1D", make_faults(3))
        store.complete(
            BASE, "L1D", 1, payload_for(1), "SDC", "full", 0.2, worker="w"
        )
        store.save_campaign("abc123", {"workload": "CRC32"})
        store.close()
        reopened = FaultStore(path)
        assert reopened.campaigns() == {"abc123": {"workload": "CRC32"}}
        rows = reopened.records(BASE, "L1D", 3)
        assert [(index, status) for index, status, _p, _r in rows] == [
            (1, DONE)
        ]
        reopened.close()

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "faults.sqlite"
        store = FaultStore(path)
        store._conn.execute("PRAGMA user_version = 99")
        store._conn.commit()
        store.close()
        with pytest.raises(FabricError, match="schema"):
            FaultStore(path)

    def test_schema_version_matches_the_migration_count(self):
        from repro.fabric.store import MIGRATIONS

        assert make_store().schema_version == len(MIGRATIONS)
