"""Fabric workers honor the campaign's execution-engine spec fields.

The wire protocol carries the submitter's engine configuration
(``translate``, ``cow_images``, ``heat_threshold``, ``chain``,
``superblocks``) so a worker rebuilds the campaign with the *same*
engine the submitter would use locally.  These are performance knobs -
effects are bit-identical either way - but a worker silently dropping
``translate`` would run an order of magnitude slower than the farm
operator expects, so the threading is pinned here:

- a spec round-trip preserves every engine field;
- the worker-side campaign context builds a translator wired with the
  spec's knobs (and none when the spec says interpret);
- an injection through the translated context actually *runs*
  translated blocks, and its effect matches the interpreted context's.
"""

from __future__ import annotations

import pytest

from repro.fabric.protocol import CampaignSpec
from repro.fabric.worker import _CampaignContext
from repro.injection.campaign import CampaignConfig, prepare_image
from repro.injection.components import Component
from repro.workloads import get_workload

WORKLOAD = "StringSearch"


@pytest.fixture(scope="module")
def golden_cycles():
    workload = get_workload(WORKLOAD)
    golden, _ = prepare_image(workload, CampaignConfig())
    return golden.cycles


def _spec(golden_cycles, **overrides):
    config = CampaignConfig(faults_per_component=2, seed=7, **overrides)
    return CampaignSpec.from_config(
        WORKLOAD, config, golden_cycles, (Component.REGFILE,)
    )


def test_spec_roundtrip_preserves_engine_fields(golden_cycles):
    spec = _spec(
        golden_cycles,
        translate=False,
        cow_images=False,
        heat_threshold=5,
        chain=False,
        superblocks=False,
    )
    wire = CampaignSpec.from_payload(spec.to_payload())
    config = wire.to_config()
    assert config.translate is False
    assert config.cow_images is False
    assert config.heat_threshold == 5
    assert config.chain is False
    assert config.superblocks is False


def test_worker_context_runs_translated(golden_cycles):
    spec = _spec(golden_cycles, heat_threshold=4, chain=False)
    context = _CampaignContext(spec)
    translator = context.injector.translator
    assert translator is not None
    assert context.image.cow is True
    assert translator.heat_threshold == 4
    assert translator.chain is False
    assert translator.superblocks is True

    fault = context.plan[Component.REGFILE][0]
    effect = context.injector.run_fault(fault)
    assert translator.block_runs > 0, "worker context never ran a block"

    interpreted = _CampaignContext(
        _spec(golden_cycles, translate=False, cow_images=False)
    )
    assert interpreted.injector.translator is None
    assert interpreted.image.cow is False
    assert interpreted.injector.run_fault(fault) == effect
