"""Fabric wire protocol: specs, machine digests, fault identity."""

from __future__ import annotations

import dataclasses

import pytest

from repro.fabric.protocol import (
    CampaignSpec,
    FabricError,
    identity_base,
    machine_digest,
    resolve_machine,
)
from repro.injection.campaign import CampaignConfig
from repro.injection.components import Component
from repro.microarch.config import (
    CORTEX_A9_CONFIG,
    SCALED_A9_CONFIG,
)


def make_spec(**overrides) -> CampaignSpec:
    config = CampaignConfig(faults_per_component=10, seed=7)
    spec = CampaignSpec.from_config("CRC32", config, golden_cycles=123_456)
    return dataclasses.replace(spec, **overrides) if overrides else spec


class TestMachineDigest:
    def test_stable_for_equal_configs(self):
        assert machine_digest(SCALED_A9_CONFIG) == machine_digest(
            dataclasses.replace(SCALED_A9_CONFIG)
        )

    def test_sensitive_to_any_geometry_field(self):
        drifted = dataclasses.replace(SCALED_A9_CONFIG, mem_latency=31)
        assert machine_digest(drifted) != machine_digest(SCALED_A9_CONFIG)

    def test_distinguishes_the_named_configs(self):
        assert machine_digest(SCALED_A9_CONFIG) != machine_digest(
            CORTEX_A9_CONFIG
        )

    def test_resolve_verifies_the_digest(self):
        digest = machine_digest(SCALED_A9_CONFIG)
        assert resolve_machine("cortex-a9-scaled", digest) is SCALED_A9_CONFIG
        with pytest.raises(FabricError, match="drifted"):
            resolve_machine("cortex-a9-scaled", "0" * 16)
        with pytest.raises(FabricError, match="unknown machine"):
            resolve_machine("cortex-m0", digest)


class TestCampaignSpec:
    def test_payload_round_trip(self):
        spec = make_spec()
        assert CampaignSpec.from_payload(spec.to_payload()) == spec

    def test_round_trip_rebuilds_an_equivalent_config(self):
        config = CampaignConfig(
            faults_per_component=10, seed=7, cluster_size=2, early_exit=False
        )
        spec = CampaignSpec.from_config("CRC32", config, golden_cycles=999)
        rebuilt = spec.to_config()
        assert rebuilt.faults_per_component == 10
        assert rebuilt.seed == 7
        assert rebuilt.cluster_size == 2
        assert rebuilt.early_exit is False
        assert rebuilt.machine is SCALED_A9_CONFIG

    def test_campaign_id_is_stable_and_content_derived(self):
        assert make_spec().campaign_id == make_spec().campaign_id
        assert make_spec().campaign_id != make_spec(seed=8).campaign_id

    def test_adaptive_configs_are_rejected(self):
        config = CampaignConfig(target_margin=0.02)
        with pytest.raises(FabricError, match="adaptive"):
            CampaignSpec.from_config("CRC32", config, golden_cycles=1)

    def test_foreign_protocol_version_is_rejected(self):
        payload = make_spec().to_payload()
        payload["version"] = 99
        with pytest.raises(FabricError, match="protocol"):
            CampaignSpec.from_payload(payload)

    def test_component_list_resolves_enum_members(self):
        spec = make_spec(components=("L1D", "REGFILE"))
        assert spec.component_list() == (Component.L1D, Component.REGFILE)

    def test_learned_sampling_travels_and_round_trips(self):
        config = CampaignConfig(
            faults_per_component=10, seed=7, learned_sampling=True
        )
        spec = CampaignSpec.from_config("CRC32", config, golden_cycles=999)
        assert spec.learned_sampling is True
        assert spec.to_config().learned_sampling is True
        assert CampaignSpec.from_payload(spec.to_payload()) == spec
        # A flipped flag is a different campaign identity.
        assert spec.campaign_id != make_spec().campaign_id

    def test_pre_learned_payloads_still_parse(self):
        """Specs serialized before the learned_sampling field existed
        must keep parsing (dataclass default, no protocol bump)."""
        payload = make_spec().to_payload()
        del payload["learned_sampling"]
        spec = CampaignSpec.from_payload(payload)
        assert spec.learned_sampling is False


class TestFaultIdentity:
    def test_identity_base_carries_the_campaign_invariants(self):
        spec = make_spec()
        base = identity_base(spec)
        assert base == {
            "workload": "CRC32",
            "machine": machine_digest(SCALED_A9_CONFIG),
            "cluster": 1,
            "seed": 7,
        }

    def test_sample_size_is_not_part_of_the_identity(self):
        # Campaigns with different n over the same stream must share
        # fault rows (the prefix property makes their faults identical).
        small = identity_base(make_spec(faults_per_component=5))
        large = identity_base(make_spec(faults_per_component=50))
        assert small == large
