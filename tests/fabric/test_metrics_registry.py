"""Prometheus registry, text exposition, exporter, dashboard rendering."""

from __future__ import annotations

import urllib.request

import pytest

from repro.fabric.dashboard import render_dashboard
from repro.fabric.metrics import (
    MetricsRegistry,
    parse_exposition,
    start_metrics_server,
    telemetry_collector,
)
from repro.injection.classify import FaultEffect
from repro.injection.components import Component
from repro.injection.telemetry import CampaignTelemetry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounterAndGauge:
    def test_counter_increments_per_label_set(self, registry):
        counter = registry.counter("repro_injections_total", "help")
        counter.inc(campaign="a")
        counter.inc(2, campaign="a")
        counter.inc(campaign="b")
        assert counter.value(campaign="a") == 3.0
        assert counter.value(campaign="b") == 1.0
        assert counter.value(campaign="never") == 0.0

    def test_counter_rejects_negative_increments(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("c_total").inc(-1)

    def test_peg_never_lowers(self, registry):
        counter = registry.counter("c_total")
        counter.peg(10, worker="w")
        counter.peg(4, worker="w")
        assert counter.value(worker="w") == 10.0
        counter.peg(12, worker="w")
        assert counter.value(worker="w") == 12.0

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value() == 3.0

    def test_get_or_create_is_idempotent_but_type_checked(self, registry):
        first = registry.counter("x_total", "the help")
        assert registry.counter("x_total") is first
        assert first.help == "the help"
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_names_are_rejected(self, registry):
        with pytest.raises(ValueError, match="metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="label name"):
            registry.counter("ok_total").inc(**{"bad-label": "v"})


class TestExposition:
    def test_render_parse_round_trip(self, registry):
        registry.counter("repro_reports_total", "Reports").inc(
            3, campaign="abc", worker="w0"
        )
        registry.gauge("repro_workers_connected", "Live workers").set(2)
        samples = parse_exposition(registry.render())
        assert samples[
            ("repro_reports_total",
             frozenset({("campaign", "abc"), ("worker", "w0")}))
        ] == 3.0
        assert samples[("repro_workers_connected", frozenset())] == 2.0

    def test_render_has_help_and_type_lines(self, registry):
        registry.counter("repro_leases_total", "Windows handed out").inc()
        text = registry.render()
        assert "# HELP repro_leases_total Windows handed out" in text
        assert "# TYPE repro_leases_total counter" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self, registry):
        registry.gauge("g").set(1, name='quo"te\\back\nnl')
        samples = parse_exposition(registry.render())
        ((_, labels),) = list(samples)
        assert dict(labels)["name"] == 'quo"te\\back\nnl'

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_exposition("this is not a metric line")
        with pytest.raises(ValueError, match="line 2"):
            parse_exposition("ok_total 1\nbad{unclosed 3")
        with pytest.raises(ValueError, match="malformed comment"):
            parse_exposition("# NOPE foo bar")

    def test_parser_accepts_float_and_scientific_values(self):
        samples = parse_exposition("a 1.5\nb 2e3\nc -4\n")
        assert samples[("a", frozenset())] == 1.5
        assert samples[("b", frozenset())] == 2000.0
        assert samples[("c", frozenset())] == -4.0

    def test_collectors_run_at_render_time(self, registry):
        state = {"value": 1.0}
        registry.register_collector(
            lambda reg: reg.gauge("live").set(state["value"])
        )
        assert parse_exposition(registry.render())[("live", frozenset())] == 1.0
        state["value"] = 7.0
        assert parse_exposition(registry.render())[("live", frozenset())] == 7.0

    def test_snapshot_is_json_friendly(self, registry):
        registry.counter("c_total", "h").inc(campaign="a")
        snap = registry.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["samples"] == [
            {"labels": {"campaign": "a"}, "value": 1.0}
        ]


class TestHttpExporter:
    def test_scrape_over_http(self, registry):
        registry.counter("repro_injections_total").inc(5, campaign="x")
        server = start_metrics_server(registry, port=0)
        try:
            host, port = server.server_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                text = response.read().decode()
            samples = parse_exposition(text)
            key = ("repro_injections_total", frozenset({("campaign", "x")}))
            assert samples[key] == 5.0
        finally:
            server.shutdown()
            server.server_close()

    def test_other_paths_are_404(self, registry):
        server = start_metrics_server(registry, port=0)
        try:
            host, port = server.server_address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=10
                )
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


class TestTelemetryCollector:
    def test_mirrors_telemetry_into_registry(self, registry):
        telemetry = CampaignTelemetry()
        telemetry.register_plan(Component.L1D, 4)
        telemetry.record(Component.L1D, FaultEffect.MASKED, ended_by="digest",
                         cycles_saved=1000)
        telemetry.record(Component.L1D, FaultEffect.SDC)
        telemetry.record(Component.L1D, FaultEffect.MASKED, replayed=True)
        registry.register_collector(telemetry_collector(telemetry, "camp"))
        samples = parse_exposition(registry.render())
        labels = frozenset({("campaign", "camp")})
        assert samples[("repro_injections_total", labels)] == 3.0
        assert samples[("repro_injections_replayed_total", labels)] == 1.0
        assert samples[("repro_cycles_saved_total", labels)] == 1000.0
        assert samples[
            ("repro_fault_effects_total",
             frozenset({("campaign", "camp"), ("component", "L1D"),
                        ("effect", "SDC")}))
        ] == 1.0
        assert samples[
            ("repro_early_exit_total",
             frozenset({("campaign", "camp"), ("mechanism", "digest")}))
        ] == 1.0


class TestDashboardRendering:
    STATUS = {
        "campaigns": {
            "abc123": {
                "counts": {"pending": 2, "leased": 1, "done": 7,
                           "quarantined": 0},
                "total": 10,
                "complete": False,
            },
        },
        "workers": {
            "w0": {"completed": 7, "leases": 4, "last_seen": 1.0,
                   "age": 2.0, "stale": False,
                   "health": {"rss_kb": 2048}},
            "ghost": {"completed": 1, "leases": 1, "last_seen": 1.0,
                      "age": 99.0, "stale": True, "health": {}},
        },
        "stale_workers": ["ghost"],
        "worker_ttl": 30.0,
        "executed_total": 8,
    }

    def test_progress_bar_and_counts(self):
        frame = render_dashboard(self.STATUS, None, "http://c:1")
        assert "campaign abc123" in frame
        assert "7/10 (running, leased 1, pending 2)" in frame
        assert "[" in frame and "#" in frame

    def test_stale_worker_is_loud(self):
        frame = render_dashboard(self.STATUS, None, "http://c:1")
        assert "** STALE **" in frame
        assert "WARNING: 1 stale worker(s)" in frame
        assert "ghost" in frame

    def test_rates_and_metrics_summary(self):
        metrics = {
            ("repro_injections_total", frozenset({("campaign", "abc123")})): 8.0,
            ("repro_injections_per_second",
             frozenset({("campaign", "fabric")})): 2.5,
        }
        frame = render_dashboard(
            self.STATUS, metrics, "http://c:1", rates={"w0": 3.25}
        )
        assert "3.2" in frame  # w0's delta rate column
        assert "8 injections recorded" in frame
        assert "2.5 inj/s live" in frame

    def test_empty_fabric_renders(self):
        frame = render_dashboard(
            {"campaigns": {}, "workers": {}}, None, "http://c:1"
        )
        assert "no campaigns submitted" in frame
        assert "no workers seen yet" in frame
