"""Fabric CLI smoke: serve + workers + SIGKILL, through real processes.

The CI-facing acceptance path: a coordinator subprocess (``repro
serve``), worker subprocesses (``repro work``), and a client subprocess
(``repro inject --fabric``) run a small CRC32 campaign.  Mid-run the
coordinator is SIGKILLed - the real signal, not an in-process
approximation - and restarted on the same store; the client polls
through the outage and the campaign finishes with zero duplicated
injections (proved by summing the executed counts every worker prints).
Finally the fabric AVF breakdown is compared line-for-line against a
local serial run.

Observability rides along: ``/status`` and ``/metrics`` are curled
mid-campaign, the exposition is validated with
:func:`repro.fabric.metrics.parse_exposition` (the tiny in-repo
validator), and the final scrape is written as a ``repro-metrics/2``
envelope - CI uploads it as an artifact next to ``metrics.json``
(``REPRO_FABRIC_METRICS`` overrides the output path).
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.fabric.metrics import parse_exposition
from repro.observability.metrics import metrics_payload, write_metrics

REPO = Path(__file__).resolve().parent.parent.parent
BENCHMARK = "CRC32"
FAULTS = 2  # per component, 6 components -> 12 faults total
EXECUTED_PATTERN = re.compile(r"executed (\d+) injection\(s\)")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def repro(*args, env: dict | None = None) -> subprocess.Popen:
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(REPO / "src")
    merged.update(env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO,
        env=merged,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def serve(tmp_path: Path, port: int) -> subprocess.Popen:
    process = repro(
        "serve",
        "--store", str(tmp_path / "faults.sqlite"),
        "--journal-dir", str(tmp_path / "journals"),
        "--port", str(port),
        "--lease-size", "2",
        "--lease-ttl", "30",
    )
    deadline = time.monotonic() + 30
    url = f"http://127.0.0.1:{port}/ping"
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=1) as response:
                if json.loads(response.read().decode()).get("ok"):
                    return process
        except OSError:
            time.sleep(0.2)
        if process.poll() is not None:
            break
    out = process.stdout.read() if process.poll() is not None else ""
    process.kill()
    raise AssertionError(f"coordinator never came up on {port}: {out}")


def finish(process: subprocess.Popen, timeout: float) -> str:
    out, _ = process.communicate(timeout=timeout)
    assert process.returncode == 0, f"exit {process.returncode}:\n{out}"
    return out


def executed_count(worker_output: str) -> int:
    match = EXECUTED_PATTERN.search(worker_output)
    assert match, f"worker printed no executed count:\n{worker_output}"
    return int(match.group(1))


def scrape(url: str, path: str) -> str:
    with urllib.request.urlopen(f"{url}{path}", timeout=10) as response:
        assert response.status == 200
        return response.read().decode()


def validated_metrics(url: str) -> dict:
    """Curl ``/metrics`` and validate the exposition line format."""
    return parse_exposition(scrape(url, "/metrics"))


def breakdown_lines(output: str) -> list[str]:
    """The deterministic part of the inject stdout: AVF rows + FIT.

    The local run additionally prints a telemetry table (the fabric
    client has no local telemetry), so only the per-component AVF rows
    and the FIT line are compared.
    """
    return [
        line.strip()
        for line in output.splitlines()
        if ("AVF" in line and "|" not in line) or "predicted FIT" in line
    ]


@pytest.mark.slow
def test_fabric_smoke_with_coordinator_sigkill(tmp_path):
    cache = tmp_path / "cache"
    env_cache = {"REPRO_CACHE_DIR": str(cache)}
    port = free_port()
    url = f"http://127.0.0.1:{port}"

    coordinator = serve(tmp_path, port)
    workers: list[subprocess.Popen] = []
    client = None
    try:
        # The client submits the campaign and starts polling.
        client = repro(
            "inject", BENCHMARK, "-n", str(FAULTS), "--fabric", url,
            env=env_cache,
        )
        # Phase 1: one worker completes exactly one window (2 faults of
        # the 12), then the coordinator is SIGKILLed mid-campaign.
        first = repro("work", url, "--name", "first", "--max-windows", "1",
                      "--max-idle", "60", "--poll", "0.2")
        workers.append(first)
        first_out = finish(first, timeout=300)
        first_executed = executed_count(first_out)
        assert first_executed > 0

        # Mid-campaign observability: /status knows the campaign is
        # incomplete, /metrics parses and already counts the first
        # worker's completions.
        status = json.loads(scrape(url, "/status"))
        (campaign_entry,) = status["campaigns"].values()
        assert not campaign_entry["complete"]
        assert "first" in status["workers"]
        mid_samples = validated_metrics(url)
        mid_injections = sum(
            value
            for (name, _labels), value in mid_samples.items()
            if name == "repro_injections_total"
        )
        assert mid_injections == first_executed

        coordinator.send_signal(signal.SIGKILL)
        coordinator.wait(timeout=30)

        # Phase 2: restart on the same store; the campaign resumes and
        # the client - which never exited - keeps polling through the
        # outage.
        coordinator = serve(tmp_path, port)
        for name in ("second", "third"):
            workers.append(
                repro("work", url, "--name", name, "--max-idle", "25",
                      "--poll", "0.2")
            )
        total_executed = first_executed + sum(
            executed_count(finish(worker, timeout=600))
            for worker in workers[1:]
        )
        client_out = finish(client, timeout=600)
        client = None

        # Zero duplicated injections across the kill/restart boundary.
        assert total_executed == FAULTS * 6, (
            f"expected every fault exactly once, saw {total_executed}"
        )

        # Final scrape: the exposition still parses, reports completion,
        # and its per-campaign totals equal the full fault count (the
        # restarted coordinator replayed phase 1 from the journal).
        final_samples = validated_metrics(url)
        final_injections = sum(
            value
            for (name, _labels), value in final_samples.items()
            if name == "repro_injections_total"
        )
        assert final_injections == FAULTS * 6
        assert 1.0 in {
            value
            for (name, _labels), value in final_samples.items()
            if name == "repro_campaign_complete"
        }

        # Ship the final scrape as a repro-metrics/2 envelope - the CI
        # artifact that lands next to the bench job's metrics.json.
        envelope_path = Path(
            os.environ.get(
                "REPRO_FABRIC_METRICS", tmp_path / "fabric-metrics.json"
            )
        )
        write_metrics(
            envelope_path,
            metrics_payload(
                "fabric-smoke",
                BENCHMARK,
                values={
                    "executed_total": total_executed,
                    "injections_total": final_injections,
                },
                context={"faults_per_component": FAULTS, "url": url},
                registry={
                    name: {
                        "samples": [
                            {"labels": dict(labels), "value": value}
                            for (sample_name, labels), value
                            in sorted(final_samples.items())
                            if sample_name == name
                        ]
                    }
                    for name in sorted(
                        {name for name, _labels in final_samples}
                    )
                },
            ),
        )

        # The fabric result is line-identical to a local serial run.
        local = repro(
            "inject", BENCHMARK, "-n", str(FAULTS),
            env={"REPRO_CACHE_DIR": str(tmp_path / "local_cache")},
        )
        local_out = finish(local, timeout=600)
        fabric_rows = breakdown_lines(client_out)
        local_rows = breakdown_lines(local_out)
        assert fabric_rows, f"no breakdown in fabric output:\n{client_out}"
        assert fabric_rows == local_rows
    finally:
        for process in [coordinator, client, *workers]:
            if process is not None and process.poll() is None:
                process.kill()
