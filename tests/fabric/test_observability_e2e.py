"""Observability end-to-end: /metrics, worker health, trace reconstruction.

The acceptance sweep for the fabric observability layer, all in-process:

- ``/metrics`` scraped mid-campaign parses and every ``*_total`` counter
  is monotonic across successive scrapes;
- at completion the exported per-class tallies are *exactly* the
  journal's tallies - the exposition is a view of the record of truth,
  never an approximation;
- a worker that heartbeats once and then goes silent past the TTL shows
  up stale in ``/status`` (and the gauges), while a freshly-heartbeating
  worker does not;
- the campaign's trace JSONL reconstructs a complete
  submit -> lease -> window span path plus a sibling report span for at
  least one executed fault, across the coordinator/worker process split;
- and the distributed per-fault effects are bit-identical to serial.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fabric.client import FabricClient
from repro.fabric.coordinator import Coordinator, create_server
from repro.fabric.metrics import parse_exposition
from repro.fabric.protocol import get_text, post_json
from repro.fabric.store import FaultStore
from repro.fabric.worker import FabricWorker
from repro.injection.campaign import (
    CampaignConfig,
    build_fault_plan,
    prepare_image,
)
from repro.injection.components import Component
from repro.injection.journal import read_journal
from repro.injection.parallel import run_injection_plan
from repro.injection.telemetry import CampaignTelemetry
from repro.observability.tracing import read_spans, span_path
from repro.workloads import get_workload

WORKLOAD = "StringSearch"
COMPONENTS = (Component.REGFILE, Component.DTLB)
FAULTS = 4
WORKER_TTL = 0.5


@pytest.fixture(scope="module")
def workload():
    return get_workload(WORKLOAD)


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(faults_per_component=FAULTS, seed=23)


@pytest.fixture(scope="module")
def serial(workload, config):
    golden, image = prepare_image(workload, config)
    plan = build_fault_plan(config, golden.cycles, COMPONENTS)
    effects = run_injection_plan(image, plan, jobs=1)
    return {"golden": golden, "plan": plan, "effects": effects}


@pytest.fixture(scope="module")
def outcome(tmp_path_factory, workload, config, serial):
    """One traced campaign over two workers, scraped while it runs."""
    tmp_path = tmp_path_factory.mktemp("obs_fabric")
    telemetry = CampaignTelemetry()
    coordinator = Coordinator(
        FaultStore(tmp_path / "faults.sqlite"),
        tmp_path / "journals",
        lease_size=2,
        telemetry=telemetry,
        worker_ttl=WORKER_TTL,
        trace=True,
    )
    server = create_server(coordinator)
    url = f"http://127.0.0.1:{server.server_address[1]}"
    threading.Thread(target=server.serve_forever, daemon=True).start()

    # A worker that says hello once and is never heard from again.
    post_json(f"{url}/heartbeat", {"worker": "ghost", "health": {"pid": 1}})

    client = FabricClient(url, poll_interval=0.05)
    box = {}
    client_thread = threading.Thread(
        target=lambda: box.update(
            result=client.run_workload(workload, config, COMPONENTS)
        )
    )
    client_thread.start()
    workers = [
        FabricWorker(url, name=f"w{index}", poll_interval=0.05,
                     heartbeat_interval=0.1)
        for index in range(2)
    ]
    worker_threads = [
        threading.Thread(target=worker.run, kwargs={"max_idle_polls": 40})
        for worker in workers
    ]
    for thread in worker_threads:
        thread.start()

    # Scrape while the campaign runs: every scrape must parse.
    scrapes = []
    while client_thread.is_alive():
        scrapes.append(parse_exposition(get_text(f"{url}/metrics")))
        time.sleep(0.05)
    client_thread.join(timeout=300)
    for thread in worker_threads:
        thread.join(timeout=60)
    assert "result" in box, "client never received a result"

    # Staleness is an age property: let everyone age past the TTL, then
    # refresh only w0 - now w0 is demonstrably live and ghost is not.
    time.sleep(WORKER_TTL + 0.2)
    post_json(f"{url}/heartbeat", {"worker": "w0", "health": {"pid": 2}})
    final_status = coordinator.status()
    scrapes.append(parse_exposition(get_text(f"{url}/metrics")))

    yield {
        "result": box["result"],
        "workers": workers,
        "coordinator": coordinator,
        "tmp_path": tmp_path,
        "scrapes": scrapes,
        "final": scrapes[-1],
        "status": final_status,
        "url": url,
    }
    server.shutdown()
    server.server_close()
    coordinator.close()


def _campaign_id(outcome) -> str:
    (campaign_id,) = outcome["coordinator"]._campaigns
    return campaign_id


class TestMetricsEndpoint:
    def test_mid_run_scrapes_parse(self, outcome):
        # parse_exposition already validated each scrape; there must have
        # been at least one mid-run (pre-completion) scrape to make the
        # monotonicity claim meaningful.
        assert len(outcome["scrapes"]) >= 2

    def test_counters_are_monotonic_across_scrapes(self, outcome):
        previous: dict = {}
        for samples in outcome["scrapes"]:
            for (name, labels), value in samples.items():
                if not name.endswith("_total"):
                    continue
                before = previous.get((name, labels), 0.0)
                assert value >= before, (
                    f"{name}{dict(labels)} went backwards: "
                    f"{before} -> {value}"
                )
                previous[(name, labels)] = value

    def test_final_effect_tallies_equal_journal(self, outcome):
        campaign_id = _campaign_id(outcome)
        journals = [
            path
            for path in (outcome["tmp_path"] / "journals").glob("*.jsonl")
            if not path.name.endswith(".trace.jsonl")
        ]
        assert len(journals) == 1
        _meta, records, quarantines = read_journal(journals[0])
        assert quarantines == []
        expected: dict[tuple[str, str], int] = {}
        for record in records:
            key = (record.component.name, record.effect.name)
            expected[key] = expected.get(key, 0) + 1
        exported = {
            (dict(labels)["component"], dict(labels)["effect"]): value
            for (name, labels), value in outcome["final"].items()
            if name == "repro_fault_effects_total"
            and dict(labels)["campaign"] == campaign_id
        }
        assert exported == {
            key: float(count) for key, count in expected.items()
        }

    def test_injections_total_equals_journal_length(self, outcome):
        campaign_id = _campaign_id(outcome)
        key = (
            "repro_injections_total",
            frozenset({("campaign", campaign_id)}),
        )
        assert outcome["final"][key] == FAULTS * len(COMPONENTS)

    def test_campaign_gauges_report_completion(self, outcome):
        campaign_id = _campaign_id(outcome)
        final = outcome["final"]
        assert final[
            ("repro_campaign_complete",
             frozenset({("campaign", campaign_id)}))
        ] == 1.0
        assert final[
            ("repro_campaign_faults",
             frozenset({("campaign", campaign_id), ("status", "done")}))
        ] == FAULTS * len(COMPONENTS)

    def test_early_exit_mechanisms_sum_to_total(self, outcome):
        campaign_id = _campaign_id(outcome)
        by_mechanism = sum(
            value
            for (name, labels), value in outcome["final"].items()
            if name == "repro_early_exit_total"
            and dict(labels)["campaign"] == campaign_id
        )
        assert by_mechanism == FAULTS * len(COMPONENTS)


class TestWorkerHealth:
    def test_silent_worker_is_stale_fresh_worker_is_not(self, outcome):
        status = outcome["status"]
        assert "ghost" in status["stale_workers"]
        assert "w0" not in status["stale_workers"]
        assert status["workers"]["ghost"]["stale"]
        assert not status["workers"]["w0"]["stale"]
        assert status["workers"]["ghost"]["age"] > WORKER_TTL
        assert status["worker_ttl"] == WORKER_TTL

    def test_health_reaches_the_gauges(self, outcome):
        final = outcome["final"]
        # Workers ship pid/rss/window counts with every report.
        for worker in ("w0", "w1"):
            key = ("repro_worker_windows",
                   frozenset({("worker", worker)}))
            assert final[key] >= 1.0
            rss = ("repro_worker_rss_kb", frozenset({("worker", worker)}))
            assert final[rss] > 0.0
        stale_gauge = ("repro_workers_stale", frozenset())
        assert final[stale_gauge] >= 1.0

    def test_heartbeats_were_counted(self, outcome):
        final = outcome["final"]
        assert final[
            ("repro_heartbeats_total", frozenset({("worker", "ghost")}))
        ] >= 1.0


class TestTraceReconstruction:
    def test_one_fault_path_is_complete(self, outcome):
        """submit -> lease -> window, plus a sibling report span."""
        campaign_id = _campaign_id(outcome)
        trace_file = (
            outcome["tmp_path"] / "journals" / f"{campaign_id}.trace.jsonl"
        )
        spans = read_spans(trace_file)
        assert spans, "trace log is empty"
        assert len({span["trace"] for span in spans}) == 1

        windows = [span for span in spans if span["name"] == "window"]
        assert windows, "no worker window spans shipped back"
        window = windows[0]
        path = span_path(spans, window["span"])
        assert [span["name"] for span in path] == [
            "submit", "lease", "window"
        ]
        lease = path[1]
        assert lease["attributes"]["component"] == (
            window["attributes"]["component"]
        )
        reports = [
            span for span in spans
            if span["name"] == "report"
            and span["parent"] == lease["span"]
        ]
        assert reports, "no report span parented on the lease"
        assert any(
            span["attributes"].get("accepted", 0) >= 1 for span in reports
        )

    def test_every_span_is_closed_and_stamped(self, outcome):
        campaign_id = _campaign_id(outcome)
        spans = read_spans(
            outcome["tmp_path"] / "journals" / f"{campaign_id}.trace.jsonl"
        )
        for span in spans:
            assert span["end"] is not None
            assert span["end"] >= span["start"]

    def test_window_spans_cover_every_executed_fault(self, outcome):
        campaign_id = _campaign_id(outcome)
        spans = read_spans(
            outcome["tmp_path"] / "journals" / f"{campaign_id}.trace.jsonl"
        )
        covered = sum(
            span["attributes"].get("completed", 0)
            for span in spans
            if span["name"] == "window"
        )
        assert covered == FAULTS * len(COMPONENTS)


class TestDistributedStillEqualsSerial:
    def test_per_fault_effects_match_serial(self, outcome, serial):
        """Tracing and metrics are observation-only: the distributed
        per-fault effects stay bit-identical to a serial run."""
        journals = [
            path
            for path in (outcome["tmp_path"] / "journals").glob("*.jsonl")
            if not path.name.endswith(".trace.jsonl")
        ]
        _meta, records, _quarantines = read_journal(journals[0])
        by_fault = {
            (record.component, record.index): record.effect
            for record in records
        }
        for component in COMPONENTS:
            for index, effect in enumerate(serial["effects"][component]):
                assert by_fault[(component, index)] is effect
        assert len(by_fault) == FAULTS * len(COMPONENTS)
