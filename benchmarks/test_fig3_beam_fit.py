"""Figure 3: beam FIT rates per benchmark (SDC / AppCrash / SysCrash)."""

from __future__ import annotations

from repro.experiments import fig3
from repro.injection.classify import FaultEffect


def test_fig3_beam_fit(benchmark, context, emit):
    results = context.beam_results()  # materialize campaigns (disk-cached)
    text = benchmark(fig3.render, context)
    emit("fig3_beam_fit", text)

    data = fig3.data(context)
    assert len(data) == 13
    # Paper shape: System Crash is the most likely beam event for most
    # benchmarks (all but a couple of AppCrash-heavy codes).
    sys_dominant = sum(
        1
        for fits in data.values()
        if fits["SysCrash"] >= max(fits["SDC"], fits["AppCrash"])
    )
    assert sys_dominant >= 9
    # Small-footprint codes (the paper: Dijkstra, MatMul, StringSearch,
    # Susans) sit in the upper half of the System-Crash ranking.
    ranked = sorted(data, key=lambda name: data[name]["SysCrash"], reverse=True)
    top_half = set(ranked[:7])
    assert len(top_half & {"Dijkstra", "MatMul", "StringSearch",
                           "Susan C", "Susan E", "Susan S"}) >= 4
