"""Basic-block translation + COW images: accelerated vs interpreter-only.

Runs the same seed-deterministic fault plan twice at ``jobs=1`` - once
with the basic-block trace translator and copy-on-write image restores
enabled (the default) and once with both disabled (the pre-translation
baseline) - on the int-heavy CRC32 workload, asserts the per-fault
effect lists are byte-identical (translation and COW are result-neutral
by construction), and requires the accelerated run to sustain at least
8x the injections/sec of the baseline (the phase-1 straight-line
translator measured ~7.7x on this box; chaining, loop superblocks and
the double-word inline paths lifted that to ~12.7x).  Both sides keep
early termination on, so the bar measures the translator/COW
contribution on top of the existing pruning, not instead of it.

``test_taint_on_translator_equivalence`` is the companion smoke: the
same workload with fault-lifetime events and crash traces armed, run
translated and interpreter-only, asserting an empty diff on
classifications, recorded event streams, *and* the per-component
masking-mechanism histogram derived from them.
"""

from __future__ import annotations

import time

from repro.injection.campaign import (
    record_golden_captures,
    record_golden_observables,
    run_golden,
)
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.injection.journal import RecordBuffer
from repro.injection.parallel import MachineImage, run_injection_plan
from repro.microarch.config import SCALED_A9_CONFIG
from repro.observability.events import masking_mechanism
from repro.workloads import get_workload

FAULTS_PER_COMPONENT = 30
COMPONENTS = (Component.L2, Component.L1I)
SPEEDUP_BAR = 8.0


def _build():
    workload = get_workload("CRC32")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots, digests = record_golden_captures(
        workload, SCALED_A9_CONFIG, golden
    )
    accelerated = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots,
        digests=digests, early_exit=True, translate=True, cow=True,
    )
    baseline = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots,
        digests=digests, early_exit=True, translate=False, cow=False,
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }
    return accelerated, baseline, plan


def test_translation_speedup(benchmark):
    """Same plan, jobs=1: identical effects, >= 8x injections/sec."""
    accelerated_image, baseline_image, plan = _build()
    total = sum(len(faults) for faults in plan.values())

    accelerated_effects = benchmark.pedantic(
        lambda: run_injection_plan(accelerated_image, plan, jobs=1),
        rounds=3,
        iterations=1,
    )
    accelerated_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    baseline_effects = run_injection_plan(baseline_image, plan, jobs=1)
    baseline_seconds = time.perf_counter() - start

    speedup = baseline_seconds / accelerated_seconds
    benchmark.extra_info["injections"] = total
    benchmark.extra_info["accelerated_inj_per_sec"] = round(
        total / accelerated_seconds, 2
    )
    benchmark.extra_info["baseline_inj_per_sec"] = round(
        total / baseline_seconds, 2
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # The equivalence guarantee: translation + COW never change any effect.
    assert accelerated_effects == baseline_effects
    assert speedup >= SPEEDUP_BAR, (
        f"translation+COW speedup {speedup:.2f}x below the {SPEEDUP_BAR}x "
        f"bar ({total} injections, "
        f"{total / accelerated_seconds:.1f}/s vs "
        f"{total / baseline_seconds:.1f}/s)"
    )


def test_taint_on_translator_equivalence():
    """Taint probes armed: translated == interpreted, mechanisms included.

    CRC32 with fault-lifetime events and crash traces on, faults spread
    across the translator's three taint regimes - REGFILE (wrapped
    variants), L1D (probe-replaying variants), L1I (fetch-side forced
    interpretation).  The diff must be empty on classifications, on the
    journaled lifetime-event streams and crash traces, and on the
    per-component masking-mechanism histogram computed from the events -
    the analysis-facing numbers a campaign actually reports.
    """
    workload = get_workload("CRC32")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots, digests, arch_digests, _ = record_golden_observables(
        workload, SCALED_A9_CONFIG, golden
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=8,
            seed=11,
        )
        for component in (Component.REGFILE, Component.L1D, Component.L1I)
    }

    def run(translate: bool):
        image = MachineImage.capture(
            workload,
            SCALED_A9_CONFIG,
            golden,
            snapshots,
            digests=digests,
            arch_digests=arch_digests,
            lifetime=True,
            trace_on_crash=16,
            translate=translate,
        )
        journal = RecordBuffer()
        effects = run_injection_plan(image, plan, jobs=1, journal=journal)
        histogram: dict = {}
        observed = []
        for record in journal.records:
            observed.append(
                (record.component, record.index, record.effect,
                 record.events, record.trace)
            )
            tally = histogram.setdefault(record.component.name, {})
            mechanism = masking_mechanism(record.events)
            tally[mechanism] = tally.get(mechanism, 0) + 1
        return effects, observed, histogram

    translated = run(True)
    interpreted = run(False)
    assert translated[0] == interpreted[0], "classification diff non-empty"
    assert translated[1] == interpreted[1], "event-stream/trace diff non-empty"
    assert translated[2] == interpreted[2], (
        "masking-mechanism histogram diff non-empty"
    )
