"""Basic-block translation + COW images: accelerated vs interpreter-only.

Runs the same seed-deterministic fault plan twice at ``jobs=1`` - once
with the basic-block trace translator and copy-on-write image restores
enabled (the default) and once with both disabled (the pre-translation
baseline) - on the int-heavy CRC32 workload, asserts the per-fault
effect lists are byte-identical (translation and COW are result-neutral
by construction), and requires the accelerated run to sustain at least
5x the injections/sec of the baseline.  Both sides keep early
termination on, so the bar measures the translator/COW contribution on
top of the existing pruning, not instead of it.
"""

from __future__ import annotations

import time

from repro.injection.campaign import record_golden_captures, run_golden
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.injection.parallel import MachineImage, run_injection_plan
from repro.microarch.config import SCALED_A9_CONFIG
from repro.workloads import get_workload

FAULTS_PER_COMPONENT = 30
COMPONENTS = (Component.L2, Component.L1I)
SPEEDUP_BAR = 5.0


def _build():
    workload = get_workload("CRC32")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots, digests = record_golden_captures(
        workload, SCALED_A9_CONFIG, golden
    )
    accelerated = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots,
        digests=digests, early_exit=True, translate=True, cow=True,
    )
    baseline = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots,
        digests=digests, early_exit=True, translate=False, cow=False,
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }
    return accelerated, baseline, plan


def test_translation_speedup(benchmark):
    """Same plan, jobs=1: identical effects, >= 5x injections/sec."""
    accelerated_image, baseline_image, plan = _build()
    total = sum(len(faults) for faults in plan.values())

    accelerated_effects = benchmark.pedantic(
        lambda: run_injection_plan(accelerated_image, plan, jobs=1),
        rounds=3,
        iterations=1,
    )
    accelerated_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    baseline_effects = run_injection_plan(baseline_image, plan, jobs=1)
    baseline_seconds = time.perf_counter() - start

    speedup = baseline_seconds / accelerated_seconds
    benchmark.extra_info["injections"] = total
    benchmark.extra_info["accelerated_inj_per_sec"] = round(
        total / accelerated_seconds, 2
    )
    benchmark.extra_info["baseline_inj_per_sec"] = round(
        total / baseline_seconds, 2
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # The equivalence guarantee: translation + COW never change any effect.
    assert accelerated_effects == baseline_effects
    assert speedup >= SPEEDUP_BAR, (
        f"translation+COW speedup {speedup:.2f}x below the {SPEEDUP_BAR}x "
        f"bar ({total} injections, "
        f"{total / accelerated_seconds:.1f}/s vs "
        f"{total / baseline_seconds:.1f}/s)"
    )
