"""Adaptive-sampling benchmark: same precision, fewer injections.

The fixed campaign buys one precision level with one sample size for
every component; the adaptive engine (:mod:`repro.injection.adaptive`)
buys the *same* precision per component with the smallest sample the
stopping rule can certify.  This bench runs both on the same seed:

1. a fixed campaign (``FAULTS_PER_COMPONENT`` faults each);
2. an adaptive campaign whose target margin is the *worst* precision the
   fixed campaign achieved across all components and criteria - i.e. the
   guarantee the fixed campaign actually delivers;

and requires every adaptive stratum to converge (no caps) while spending
at least 25% fewer injections than the fixed sample on two or more
components.  A second test pins the determinism contract at benchmark
scale: identical reported results across jobs in {1, 4} and two batch
sizes.
"""

from __future__ import annotations

import pytest

from repro.injection.adaptive import AdaptiveCampaign, stratum_widths
from repro.injection.campaign import CampaignConfig, InjectionCampaign
from repro.injection.components import Component
from repro.workloads import get_workload

WORKLOAD = "CRC32"
COMPONENTS = (Component.L1D, Component.L2, Component.REGFILE, Component.ITLB)
FAULTS_PER_COMPONENT = 100
SEED = 9
JOBS = 4
SAVINGS_BAR = 0.25
MIN_SAVING_COMPONENTS = 2


def _fixed_worst_width(result, confidence: float) -> float:
    """The precision the fixed campaign actually guarantees: its widest
    tracked rate across every component and criterion."""
    worst = 0.0
    for tally in result.components.values():
        widths = stratum_widths(
            tally.population_bits, tally.counts, tally.injections, confidence
        )
        worst = max(worst, max(widths.values()))
    return worst


def _tallies(result) -> dict:
    return {
        component.name: (
            tally.injections,
            {
                effect.name: count
                for effect, count in sorted(
                    tally.counts.items(), key=lambda item: item[0].name
                )
            },
        )
        for component, tally in result.components.items()
    }


@pytest.mark.slow
def test_adaptive_savings(tmp_path, benchmark):
    """Adaptive reaches the fixed campaign's margins with >= 25% fewer
    injections on >= 2 components."""
    workload = get_workload(WORKLOAD)
    fixed = InjectionCampaign(
        CampaignConfig(
            faults_per_component=FAULTS_PER_COMPONENT, seed=SEED, jobs=JOBS
        ),
        cache_dir=tmp_path / "fixed",
    )
    fixed_result = fixed.run_workload(workload, components=COMPONENTS)
    target = _fixed_worst_width(fixed_result, fixed.config.confidence)

    adaptive = AdaptiveCampaign(
        CampaignConfig(
            target_margin=target,
            seed=SEED,
            jobs=JOBS,
            batch_size=10,
            min_faults=10,
            max_faults=FAULTS_PER_COMPONENT,
        ),
        cache_dir=tmp_path / "adaptive",
    )
    adaptive_result = benchmark.pedantic(
        lambda: adaptive.run_workload(
            workload, components=COMPONENTS, use_cache=False
        ),
        rounds=1,
        iterations=1,
    )
    diagnostics = adaptive.diagnostics[WORKLOAD]

    fixed_total = FAULTS_PER_COMPONENT * len(COMPONENTS)
    executed_total = diagnostics.total_executed
    savings = {
        component: 1.0
        - diagnostics.strata[component].executed / FAULTS_PER_COMPONENT
        for component in COMPONENTS
    }
    benchmark.extra_info["target_margin"] = round(target, 4)
    benchmark.extra_info["fixed_injections"] = fixed_total
    benchmark.extra_info["adaptive_injections"] = executed_total
    benchmark.extra_info["savings_by_component"] = {
        component.name: round(saving, 3)
        for component, saving in savings.items()
    }

    # Every stratum must genuinely reach the fixed campaign's precision -
    # the cap equals the fixed sample size, so convergence is achievable
    # by construction, and a capped stratum would mean the engine failed.
    for component in COMPONENTS:
        status = diagnostics.strata[component]
        assert status.satisfied, (
            f"{component.name} did not converge to +/-{target:.4f} "
            f"within the fixed sample size"
        )
        assert max(status.widths.values()) <= target
        # The adaptive tallies are a prefix of the fixed campaign's: same
        # seed, same stream, just cut earlier.
        adaptive_n = adaptive_result.components[component].injections
        assert adaptive_n <= fixed_result.components[component].injections

    saved_enough = [
        component
        for component, saving in savings.items()
        if saving >= SAVINGS_BAR
    ]
    assert len(saved_enough) >= MIN_SAVING_COMPONENTS, (
        f"adaptive saved >= {SAVINGS_BAR:.0%} on only "
        f"{len(saved_enough)} component(s): "
        + ", ".join(
            f"{component.name}={saving:.0%}"
            for component, saving in savings.items()
        )
    )
    assert executed_total < fixed_total


@pytest.mark.slow
def test_adaptive_equivalence_across_jobs_and_batches(tmp_path):
    """Reported adaptive results are bit-identical for jobs in {1, 4} and
    two batch sizes (the determinism contract at benchmark scale)."""
    workload = get_workload(WORKLOAD)
    components = (Component.L1D, Component.L2)
    reference = None
    for jobs, batch in ((1, 20), (4, 20), (1, 13), (4, 27)):
        campaign = AdaptiveCampaign(
            CampaignConfig(
                target_margin=0.12,
                seed=SEED,
                jobs=jobs,
                batch_size=batch,
                min_faults=10,
                max_faults=40,
            ),
            cache_dir=tmp_path / f"cache-{jobs}-{batch}",
        )
        result = campaign.run_workload(workload, components=components)
        tallies = _tallies(result)
        if reference is None:
            reference = tallies
        else:
            assert tallies == reference, (
                f"adaptive result changed under jobs={jobs} "
                f"batch_size={batch}"
            )
