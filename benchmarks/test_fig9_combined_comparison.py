"""Figure 9: SDC + Application Crash combined FIT comparison.

Paper shape: combining the two CPU-attributable classes shrinks the
per-benchmark differences (crashes and SDCs trade places between setups) -
e.g. MatMul and Qsort fall from ~100x (Fig. 7) to under ~10x.
"""

from __future__ import annotations

from statistics import median

from repro.experiments import fig7, fig9


def test_fig9_combined_comparison(benchmark, context, emit):
    context.beam_results()
    context.injection_results()
    text = benchmark(fig9.render, context)
    emit("fig9_combined_comparison", text)

    combined = fig9.data(context)
    appcrash_only = fig7.data(context)
    assert len(combined) == 13
    # Combining classes must not blow up the disagreement: the median
    # combined ratio is no larger than the median AppCrash-only ratio.
    assert median(abs(row.ratio) for row in combined) <= median(
        abs(row.ratio) for row in appcrash_only
    )
