"""Figure 5: fault-injection-predicted FIT rates per benchmark."""

from __future__ import annotations

from repro.experiments import fig5


def test_fig5_injection_fit(benchmark, context, emit):
    context.injection_results()
    text = benchmark(fig5.render, context)
    emit("fig5_injection_fit", text)

    fits = fig5.data(context)
    assert len(fits) == 13
    assert all(f.total >= 0 for f in fits.values())
    # SDC dominates the injection-predicted FIT for most codes (paper:
    # "fault injection average FIT rate is dominated by the SDC FIT rate").
    sdc_dominant = sum(
        1 for f in fits.values() if f.sdc >= max(f.app_crash, f.sys_crash)
    )
    assert sdc_dominant >= 7
