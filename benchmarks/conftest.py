"""Shared fixtures for the benchmark harness.

Every table/figure bench pulls campaign data from the shared
:class:`ExperimentContext`; campaigns are disk-cached under
``.repro_cache`` (shipped with the repository), so benches re-render from
cache in milliseconds.  Delete the cache or change ``REPRO_FAULTS`` /
``REPRO_BEAM_HOURS`` to re-run campaigns from scratch.

Rendered tables/figures are also written to ``results/`` so the regenerated
paper artifacts survive the pytest run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import get_context


@pytest.fixture(scope="session")
def context():
    return get_context()


@pytest.fixture(scope="session")
def results_dir():
    path = Path("results")
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(results_dir):
    """Persist a rendered artifact and echo it to the terminal."""

    def writer(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[written to results/{name}.txt]")

    return writer
