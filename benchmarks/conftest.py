"""Shared fixtures for the benchmark harness.

Every table/figure bench pulls campaign data from the shared
:class:`ExperimentContext`; campaigns are disk-cached under
``.repro_cache`` (shipped with the repository), so benches re-render from
cache in milliseconds.  Delete the cache or change ``REPRO_FAULTS`` /
``REPRO_BEAM_HOURS`` to re-run campaigns from scratch.

Rendered tables/figures are also written to ``results/`` so the regenerated
paper artifacts survive the pytest run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import get_context
from repro.observability.metrics import metrics_payload, write_metrics


@pytest.fixture(scope="session")
def context():
    return get_context()


@pytest.fixture(scope="session")
def results_dir():
    path = Path("results")
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(autouse=True)
def bench_metrics(request, results_dir):
    """Write a ``BENCH_<test>.json`` metrics envelope for every bench.

    Uses the shared machine-readable schema
    (:mod:`repro.observability.metrics`), so campaign ``--metrics``
    exports and benchmark artifacts are parsed by the same readers.
    Timing statistics are included when the test used the
    ``pytest-benchmark`` fixture; render-only benches still get an
    envelope recording that they ran.
    """
    yield
    name = request.node.name
    safe = "".join(
        ch if (ch.isalnum() or ch in "-_") else "_" for ch in name
    )
    values: dict = {}
    bench = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(getattr(bench, "stats", None), "stats", None)
    if stats is not None:
        for key in ("min", "max", "mean", "stddev", "median", "rounds"):
            value = getattr(stats, key, None)
            if value is not None:
                values[key] = value
    extra = getattr(bench, "extra_info", None)
    if extra:
        values["extra_info"] = dict(extra)
    payload = metrics_payload(
        "benchmark",
        name,
        values,
        context={"file": request.node.fspath.basename},
    )
    write_metrics(results_dir / f"BENCH_{safe}.json", payload)


@pytest.fixture(scope="session")
def emit(results_dir):
    """Persist a rendered artifact and echo it to the terminal."""

    def writer(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[written to results/{name}.txt]")

    return writer
