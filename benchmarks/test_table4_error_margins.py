"""Table IV: per-component error margins of the injection campaigns."""

from __future__ import annotations

from repro.experiments import table4


def test_table4_error_margins(benchmark, context, emit):
    context.injection_results()  # materialize campaigns (disk-cached)
    text = benchmark(table4.render, context)
    assert "Register File" in text
    rows = table4.data(context)
    assert all(0 < row.avg_margin < 0.25 for row in rows)
    emit("table4_error_margins", text)
