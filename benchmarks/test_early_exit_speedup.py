"""Early-Masked-termination speedup: pruned vs full injection throughput.

Runs the same seed-deterministic fault plan twice at ``jobs=1`` - once
with early termination (golden-digest convergence + dead-cell
short-circuits) and once without - on the masked-heavy L2 and L1I
components, asserts the per-fault effect lists are byte-identical (the
equivalence guarantee), and requires the pruned run to sustain at least
1.5x the injections/sec of the full run.
"""

from __future__ import annotations

import time

from repro.injection.campaign import record_golden_captures, run_golden
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.injection.parallel import MachineImage, run_injection_plan
from repro.injection.telemetry import CampaignTelemetry
from repro.microarch.config import SCALED_A9_CONFIG
from repro.workloads import get_workload

FAULTS_PER_COMPONENT = 40
COMPONENTS = (Component.L2, Component.L1I)
SPEEDUP_BAR = 1.5


def _build():
    workload = get_workload("StringSearch")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots, digests = record_golden_captures(
        workload, SCALED_A9_CONFIG, golden
    )
    pruned = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots,
        digests=digests, early_exit=True,
    )
    full = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots, early_exit=False
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }
    return pruned, full, plan


def test_early_exit_speedup(benchmark):
    """Same plan, jobs=1: identical effects, >= 1.5x injections/sec."""
    pruned_image, full_image, plan = _build()
    total = sum(len(faults) for faults in plan.values())

    telemetry = CampaignTelemetry()
    pruned_effects = benchmark.pedantic(
        lambda: run_injection_plan(
            pruned_image, plan, jobs=1, telemetry=telemetry
        ),
        rounds=3,
        iterations=1,
    )
    pruned_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    full_effects = run_injection_plan(full_image, plan, jobs=1)
    full_seconds = time.perf_counter() - start

    speedup = full_seconds / pruned_seconds
    benchmark.extra_info["injections"] = total
    benchmark.extra_info["pruned_inj_per_sec"] = round(
        total / pruned_seconds, 2
    )
    benchmark.extra_info["full_inj_per_sec"] = round(total / full_seconds, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["digest_exits"] = telemetry.ended_digest
    benchmark.extra_info["dead_cell_exits"] = telemetry.ended_dead_cell
    benchmark.extra_info["cycles_saved"] = telemetry.cycles_saved

    # The equivalence guarantee: pruning never changes any effect.
    assert pruned_effects == full_effects
    # The pruning must have actually fired on a masked-heavy plan.
    assert telemetry.ended_digest + telemetry.ended_dead_cell > 0
    assert speedup >= SPEEDUP_BAR, (
        f"early-exit speedup {speedup:.2f}x below the {SPEEDUP_BAR}x bar "
        f"({total} injections, {telemetry.ended_digest} digest-converged, "
        f"{telemetry.ended_dead_cell} dead-cell)"
    )
