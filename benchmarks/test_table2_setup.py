"""Table II: setup attribute summary (beam board vs simulated model)."""

from __future__ import annotations

from repro.experiments import table2


def test_table2_setup(benchmark, context, emit):
    text = benchmark(table2.render, context)
    assert "L2 Cache" in text
    emit("table2_setup", text)
