"""Figure 10: overview - suite-average FIT with cumulative crash classes.

Paper headline: beam/injection ratio ~1 for SDC only, growing as crash
classes are added, but the Total FIT difference stays within one order of
magnitude (10.9x in the paper) - the "narrow range" that lets designers
bound the field FIT between the two estimates.
"""

from __future__ import annotations

from repro.experiments import fig10


def test_fig10_overview(benchmark, context, emit):
    context.beam_results()
    context.injection_results()
    text = benchmark(fig10.render, context)
    emit("fig10_overview", text)

    bars = fig10.data(context)
    assert len(bars) == 3
    sdc_bar, combined_bar, total_bar = bars

    # SDC-only: the two methodologies nearly agree.
    assert abs(sdc_bar.ratio) <= 5
    # Adding crash classes pushes the beam side up monotonically.
    assert total_bar.beam_mean_fit >= combined_bar.beam_mean_fit >= sdc_bar.beam_mean_fit
    # The ratio grows as crash classes are added, beam on top...
    assert total_bar.ratio >= combined_bar.ratio >= 0 or abs(combined_bar.ratio) <= 5
    # ...but the total stays within ~an order of magnitude-scale band.
    assert total_bar.ratio <= 40
