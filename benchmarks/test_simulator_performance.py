"""Simulator performance and the design-choice ablations from DESIGN.md."""

from __future__ import annotations

import pytest

from repro.injection.campaign import (
    record_golden_snapshots,
    run_golden,
    run_single_injection,
)
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.microarch.config import SCALED_A9_CONFIG
from repro.microarch import core as core_module
from repro.microarch.system import System
from repro.microarch.translate import attach_translator
from repro.workloads import get_workload


def _record_rate(benchmark, result) -> None:
    """Record instructions/sec in the BENCH json metrics envelope."""
    benchmark.extra_info["instructions"] = result.counters.instructions
    benchmark.extra_info["instructions_per_sec"] = round(
        result.counters.instructions / benchmark.stats.stats.mean
    )


def test_detailed_mode_throughput(benchmark):
    """Instructions per second in the detailed (full-hierarchy) mode."""
    workload = get_workload("Susan E")

    def run():
        system = System(workload.program(SCALED_A9_CONFIG.layout))
        return system.run(max_cycles=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exited_cleanly
    _record_rate(benchmark, result)


def test_translated_mode_throughput(benchmark):
    """Detailed mode with the basic-block trace translator attached.

    Same machine and workload as :func:`test_detailed_mode_throughput`;
    the two BENCH envelopes together record the translator's raw
    interpreter-loop speedup (campaign-level gains are measured in
    ``test_translation_speedup.py``).
    """
    workload = get_workload("Susan E")

    def run():
        system = System(workload.program(SCALED_A9_CONFIG.layout))
        assert attach_translator(system) is not None
        return system.run(max_cycles=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exited_cleanly
    _record_rate(benchmark, result)


def test_atomic_mode_throughput(benchmark):
    """Atomic mode skips cache/TLB modeling (Table I's architecture row)."""
    workload = get_workload("Susan E")
    machine = SCALED_A9_CONFIG.with_atomic()

    def run():
        system = System(workload.program(machine.layout), config=machine)
        return system.run(max_cycles=50_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exited_cleanly
    _record_rate(benchmark, result)


def test_ablation_decode_cache(benchmark):
    """Ablation: clearing the decode memo every run (cold decoder)."""
    workload = get_workload("Susan E")

    def run_cold():
        core_module._DECODE_CACHE.clear()
        system = System(workload.program(SCALED_A9_CONFIG.layout))
        return system.run(max_cycles=50_000_000)

    result = benchmark.pedantic(run_cold, rounds=3, iterations=1)
    assert result.exited_cleanly
    _record_rate(benchmark, result)


@pytest.fixture(scope="module")
def injection_setup():
    workload = get_workload("Dijkstra")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots = record_golden_snapshots(workload, SCALED_A9_CONFIG, golden)
    faults = generate_faults(
        Component.L1D,
        component_bits(SCALED_A9_CONFIG, Component.L1D),
        golden.cycles,
        count=4,
        seed=21,
    )
    return workload, golden, snapshots, faults


def test_injection_latency_checkpointed(benchmark, injection_setup):
    """One injection experiment with checkpoint fast-forwarding."""
    workload, golden, snapshots, faults = injection_setup

    def inject():
        return [
            run_single_injection(
                workload, fault, SCALED_A9_CONFIG, golden, snapshots=snapshots
            )
            for fault in faults
        ]

    effects = benchmark.pedantic(inject, rounds=3, iterations=1)
    assert len(effects) == 4
    benchmark.extra_info["injections_per_sec"] = round(
        len(effects) / benchmark.stats.stats.mean, 2
    )


def test_ablation_injection_without_checkpoints(benchmark, injection_setup):
    """Ablation: the same injections re-executing the full prefix."""
    workload, golden, _snapshots, faults = injection_setup

    def inject():
        return [
            run_single_injection(workload, fault, SCALED_A9_CONFIG, golden)
            for fault in faults
        ]

    effects = benchmark.pedantic(inject, rounds=3, iterations=1)
    assert len(effects) == 4
    benchmark.extra_info["injections_per_sec"] = round(
        len(effects) / benchmark.stats.stats.mean, 2
    )
