"""Figure 7: Application Crash FIT - beam vs fault injection.

Paper shape: the beam rate is essentially always the higher one (crashes
are also triggered by logic/control hardware that injection cannot reach,
and by the cache-resident online check routine).
"""

from __future__ import annotations

from repro.experiments import fig7


def test_fig7_appcrash_comparison(benchmark, context, emit):
    context.beam_results()
    context.injection_results()
    text = benchmark(fig7.render, context)
    emit("fig7_appcrash_comparison", text)

    rows = fig7.data(context)
    assert len(rows) == 13
    beam_higher = sum(1 for row in rows if row.beam_higher)
    assert beam_higher >= 10
