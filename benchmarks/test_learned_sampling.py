"""Learned-sampling benchmark: same precision, fewer injections again.

The adaptive engine already stops each stratum at the smallest sample the
Wilson rule can certify; the learned sampler (:mod:`repro.injection.learned`)
attacks the *variance* instead.  A pilot trains a Naive Bayes P(Masked)
model, the remaining frame is split into predicted-probability bins with
exact frame weights, and the stratified post-corrected estimator lets
uncertain bins soak up most of the injections while certain bins coast.

This bench runs plain and learned adaptive campaigns on the same seed,
margin, and confidence, and requires:

- >= 20% fewer executed injections on at least 2 CRC32 components;
- final AVF point estimates inside each other's intervals (the
  unbiasedness bar - savings that move the answer are not savings);
- every stratum converged in both arms (no caps).

Strata whose pilot cannot support a model (all-Masked components like the
TLBs on CRC32) deterministically fall back to plain ordering, so they are
measured but not claimed.
"""

from __future__ import annotations

import pytest

from repro.injection.adaptive import AdaptiveCampaign
from repro.injection.campaign import CampaignConfig
from repro.injection.components import Component
from repro.workloads import get_workload

WORKLOAD = "CRC32"
COMPONENTS = (Component.L1D, Component.REGFILE, Component.L1I)
SEED = 9
JOBS = 4
TARGET_MARGIN = 0.06
CONFIDENCE = 0.99
MIN_FAULTS = 60  # the pilot: large enough to seed both outcome classes
MAX_FAULTS = 500
SAVINGS_BAR = 0.20
MIN_SAVING_COMPONENTS = 2


def _config(learned: bool) -> CampaignConfig:
    return CampaignConfig(
        target_margin=TARGET_MARGIN,
        confidence=CONFIDENCE,
        seed=SEED,
        jobs=JOBS,
        batch_size=25,
        min_faults=MIN_FAULTS,
        max_faults=MAX_FAULTS,
        learned_sampling=learned,
    )


@pytest.mark.slow
def test_learned_sampling_savings(tmp_path, benchmark):
    """Learned importance sampling reaches the same target margin with
    >= 20% fewer injections on >= 2 components, without moving the AVF."""
    workload = get_workload(WORKLOAD)

    plain = AdaptiveCampaign(_config(False), cache_dir=tmp_path / "plain")
    plain_result = plain.run_workload(workload, components=COMPONENTS)
    plain_diag = plain.diagnostics[WORKLOAD]

    learned = AdaptiveCampaign(_config(True), cache_dir=tmp_path / "learned")
    learned_result = benchmark.pedantic(
        lambda: learned.run_workload(
            workload, components=COMPONENTS, use_cache=False
        ),
        rounds=1,
        iterations=1,
    )
    learned_diag = learned.diagnostics[WORKLOAD]

    savings = {}
    for component in COMPONENTS:
        plain_status = plain_diag.strata[component]
        learned_status = learned_diag.strata[component]
        assert plain_status.satisfied and learned_status.satisfied, (
            f"{component.name} did not converge to +/-{TARGET_MARGIN} "
            f"in both arms"
        )
        savings[component] = 1.0 - (
            learned_status.executed / plain_status.executed
        )

    benchmark.extra_info["target_margin"] = TARGET_MARGIN
    benchmark.extra_info["plain_injections"] = plain_diag.total_executed
    benchmark.extra_info["learned_injections"] = learned_diag.total_executed
    benchmark.extra_info["savings_by_component"] = {
        component.name: round(saving, 3)
        for component, saving in savings.items()
    }
    benchmark.extra_info["modes"] = {
        component.name: learned_diag.strata[component].mode
        for component in COMPONENTS
    }
    benchmark.extra_info["model_digests"] = {
        component.name: learned_diag.strata[component].model_digest
        for component in COMPONENTS
        if learned_diag.strata[component].model_digest
    }

    # Unbiasedness bar: each arm's AVF point estimate sits inside the
    # other arm's interval.  Importance sampling that shifted the answer
    # would fail here no matter how much it "saved".
    avf_pairs = {}
    for component in COMPONENTS:
        ours = learned_result.components[component]
        theirs = plain_result.components[component]
        avf_pairs[component.name] = {
            "plain": round(theirs.avf, 4),
            "learned": round(ours.avf, 4),
        }
        assert abs(ours.avf - theirs.avf) <= theirs.margin, (
            f"{component.name}: learned AVF {ours.avf:.4f} outside the "
            f"plain interval +/-{theirs.margin:.4f} of {theirs.avf:.4f}"
        )
        assert abs(ours.avf - theirs.avf) <= ours.margin, (
            f"{component.name}: plain AVF {theirs.avf:.4f} outside the "
            f"learned interval +/-{ours.margin:.4f} of {ours.avf:.4f}"
        )
    benchmark.extra_info["avf_by_component"] = avf_pairs

    saved_enough = [
        component
        for component, saving in savings.items()
        if saving >= SAVINGS_BAR
        and learned_diag.strata[component].mode == "learned"
    ]
    assert len(saved_enough) >= MIN_SAVING_COMPONENTS, (
        f"learned sampling saved >= {SAVINGS_BAR:.0%} on only "
        f"{len(saved_enough)} component(s): "
        + ", ".join(
            f"{component.name}={saving:.0%}"
            for component, saving in savings.items()
        )
    )


@pytest.mark.slow
def test_learned_equivalence_across_jobs_and_batches(tmp_path):
    """The determinism contract with importance sampling on: identical
    reported results and model digest for jobs in {1, 4} and two batch
    sizes."""
    workload = get_workload(WORKLOAD)
    components = (Component.L1D,)
    reference = None
    reference_digest = None
    for jobs, batch in ((1, 25), (4, 25), (4, 13), (1, 41)):
        campaign = AdaptiveCampaign(
            CampaignConfig(
                target_margin=0.1,
                seed=SEED,
                jobs=jobs,
                batch_size=batch,
                min_faults=30,
                max_faults=200,
                learned_sampling=True,
            ),
            cache_dir=tmp_path / f"cache-{jobs}-{batch}",
        )
        result = campaign.run_workload(workload, components=components)
        tallies = {
            component.name: (
                tally.injections,
                {
                    effect.name: count
                    for effect, count in sorted(
                        tally.counts.items(), key=lambda item: item[0].name
                    )
                },
            )
            for component, tally in result.components.items()
        }
        digest = campaign.diagnostics[WORKLOAD].strata[
            Component.L1D
        ].model_digest
        if reference is None:
            reference, reference_digest = tallies, digest
        else:
            assert tallies == reference, (
                f"learned result changed under jobs={jobs} batch={batch}"
            )
            assert digest == reference_digest
