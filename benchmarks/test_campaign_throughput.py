"""Campaign engine throughput: injections/sec, serial vs. parallel.

Measures the end-to-end rate of the parallel campaign engine on a live
(uncached) mini-campaign and records the parallel speedup in
``extra_info``.  The >= 1.8x speedup acceptance bar is only asserted on
machines with at least four cores - a single-core container cannot
exhibit parallelism, only pool overhead - but the byte-identical-results
guarantee is asserted everywhere.
"""

from __future__ import annotations

import os
import time

from repro.injection.campaign import (
    record_golden_observables,
    record_golden_snapshots,
    run_golden,
)
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.injection.journal import RecordBuffer
from repro.injection.parallel import MachineImage, run_injection_plan
from repro.microarch.config import SCALED_A9_CONFIG
from repro.workloads import get_workload

#: Enough work to amortize pool start-up, small enough for a quick bench.
FAULTS_PER_COMPONENT = 24
COMPONENTS = (Component.REGFILE, Component.L1D, Component.DTLB)


def _build_plan():
    workload = get_workload("StringSearch")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots = record_golden_snapshots(workload, SCALED_A9_CONFIG, golden)
    image = MachineImage.capture(workload, SCALED_A9_CONFIG, golden, snapshots)
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }
    return image, plan


def test_campaign_throughput_serial_vs_parallel(benchmark):
    """Injections/sec at jobs=1 vs jobs=cpu_count; speedup in extra_info."""
    image, plan = _build_plan()
    total = sum(len(faults) for faults in plan.values())
    cores = os.cpu_count() or 1

    serial_effects = benchmark.pedantic(
        lambda: run_injection_plan(image, plan, jobs=1), rounds=3, iterations=1
    )
    serial_seconds = benchmark.stats.stats.mean

    start = time.perf_counter()
    parallel_effects = run_injection_plan(image, plan, jobs=cores)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["injections"] = total
    benchmark.extra_info["translate"] = image.translate
    benchmark.extra_info["cow_images"] = image.cow
    benchmark.extra_info["serial_inj_per_sec"] = round(total / serial_seconds, 2)
    benchmark.extra_info["parallel_jobs"] = cores
    benchmark.extra_info["parallel_inj_per_sec"] = round(
        total / parallel_seconds, 2
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # Determinism holds at any worker count, on any machine.
    assert parallel_effects == serial_effects
    # The speedup bar only makes sense where parallelism is available.
    if cores >= 4:
        assert speedup >= 1.8, (
            f"parallel campaign speedup {speedup:.2f}x below the 1.8x bar "
            f"on a {cores}-core machine"
        )


def _min_seconds(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_lifetime_event_overhead(benchmark):
    """Fault-lifetime event collection must cost < 15% campaign throughput.

    Runs the same mini-campaign with and without
    ``MachineImage.lifetime`` (everything else identical, early exit on
    in both) and bounds the slowdown.  Effects must be byte-identical -
    events are pure observation.

    Both images disable the basic-block translator so the budget
    isolates the cost of the event collection itself, interpreter vs
    interpreter.  (The translated engine's behavior under armed probes -
    probe-replaying variants for data-side taint, wrapped variants for
    regfile taint, forced interpretation for fetch-side taint - is
    measured separately by
    ``test_lifetime_campaign_translation_speedup``.)
    """
    workload = get_workload("StringSearch")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots, digests, arch_digests, _ = record_golden_observables(
        workload, SCALED_A9_CONFIG, golden
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }
    image_off = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots, digests=digests,
        translate=False,
    )
    image_on = MachineImage.capture(
        workload,
        SCALED_A9_CONFIG,
        golden,
        snapshots,
        digests=digests,
        arch_digests=arch_digests,
        lifetime=True,
        translate=False,
    )

    effects_on = benchmark.pedantic(
        lambda: run_injection_plan(image_on, plan, jobs=1),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    on_seconds = benchmark.stats.stats.min
    effects_off = run_injection_plan(image_off, plan, jobs=1)
    off_seconds = _min_seconds(
        lambda: run_injection_plan(image_off, plan, jobs=1), rounds=3
    )

    overhead = on_seconds / off_seconds - 1.0
    benchmark.extra_info["baseline_seconds"] = round(off_seconds, 4)
    benchmark.extra_info["with_events_seconds"] = round(on_seconds, 4)
    benchmark.extra_info["overhead_percent"] = round(overhead * 100, 2)

    assert effects_on == effects_off, (
        "fault-lifetime events changed an injection classification"
    )
    assert overhead < 0.15, (
        f"fault-lifetime event overhead {overhead * 100:.1f}% exceeds "
        f"the 15% budget"
    )


#: Translated-vs-interpreter floor for a lifetime-event campaign.  Taint
#: probes used to force full interpretation; probe-replaying variants
#: (data-side taint) and wrapped variants (regfile taint) keep the
#: translated speedup with events on.  Conservative: same-box
#: measurements run well above this (~4x).
LIFETIME_SPEEDUP_BAR = 3.0


def test_lifetime_campaign_translation_speedup(benchmark):
    """Translation must keep >= 3x throughput with lifetime events on.

    The same mini-campaign (lifetime events armed, early exit on) runs
    once on the translated engine and once interpreter-only.  Every
    injection arms taint probes for its component: L1D and DTLB faults
    exercise the probe-replaying translated variants, REGFILE faults the
    wrapped variants (register accesses routed through the taint
    wrapper's subscripts).  Effects and the recorded lifetime-event
    streams must be byte-identical - the speedup may never cost
    observation fidelity.
    """
    workload = get_workload("StringSearch")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots, digests, arch_digests, _ = record_golden_observables(
        workload, SCALED_A9_CONFIG, golden
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }

    def capture(translate: bool) -> MachineImage:
        return MachineImage.capture(
            workload,
            SCALED_A9_CONFIG,
            golden,
            snapshots,
            digests=digests,
            arch_digests=arch_digests,
            lifetime=True,
            translate=translate,
        )

    image_translated = capture(True)
    image_interp = capture(False)
    total = sum(len(faults) for faults in plan.values())

    translated_effects = benchmark.pedantic(
        lambda: run_injection_plan(image_translated, plan, jobs=1),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    translated_seconds = benchmark.stats.stats.min
    interp_effects = run_injection_plan(image_interp, plan, jobs=1)
    interp_seconds = _min_seconds(
        lambda: run_injection_plan(image_interp, plan, jobs=1), rounds=3
    )

    # Journaled records carry the lifetime-event payloads; diff them too
    # (minus the wall-clock field, the one legitimately varying value).
    def journal_lines(image) -> list[dict]:
        buffer = RecordBuffer()
        run_injection_plan(image, plan, jobs=1, journal=buffer)
        lines = [record.to_line() for record in buffer.records]
        for line in lines:
            line.pop("wall", None)
        return lines

    translated_lines = journal_lines(image_translated)
    interp_lines = journal_lines(image_interp)

    speedup = interp_seconds / translated_seconds
    benchmark.extra_info["injections"] = total
    benchmark.extra_info["interpreter_inj_per_sec"] = round(
        total / interp_seconds, 2
    )
    benchmark.extra_info["translated_inj_per_sec"] = round(
        total / translated_seconds, 2
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert translated_effects == interp_effects, (
        "translation changed a lifetime-campaign classification"
    )
    assert translated_lines == interp_lines, (
        "translation changed a lifetime-event stream or record payload"
    )
    assert speedup >= LIFETIME_SPEEDUP_BAR, (
        f"lifetime-campaign translation speedup {speedup:.2f}x below "
        f"the {LIFETIME_SPEEDUP_BAR}x bar"
    )
