"""Figure 8: System Crash FIT - beam vs fault injection.

Paper shape: the beam rate is always (much) higher - driven by resident
kernel/OS state in otherwise-unused cache lines and by un-modeled platform
logic (9x to 287x in the paper).
"""

from __future__ import annotations

from repro.experiments import fig8


def test_fig8_syscrash_comparison(benchmark, context, emit):
    context.beam_results()
    context.injection_results()
    text = benchmark(fig8.render, context)
    emit("fig8_syscrash_comparison", text)

    rows = fig8.data(context)
    assert len(rows) == 13
    assert all(row.beam_higher for row in rows)
    assert all(abs(row.ratio) >= 2 for row in rows)
