"""Structured-tracing overhead: armed throughput >= 0.95x of tracing-off.

Tracing exists to be left on for whole fabric campaigns, so it must be
effectively free.  The design makes it cheap by construction - the hot
loops only ever test a ``tracer is not None`` local, and spans are
minted per leased *window*, never per injection - and this benchmark
pins that property: the same mini-campaign with a live
:class:`~repro.observability.tracing.Tracer` must keep at least 95% of
the tracing-off throughput, with byte-identical effects (tracing is pure
observation).
"""

from __future__ import annotations

import time

from repro.injection.campaign import (
    record_golden_snapshots,
    run_golden,
)
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.injection.parallel import MachineImage, run_injection_plan
from repro.microarch.config import SCALED_A9_CONFIG
from repro.observability.tracing import Tracer
from repro.workloads import get_workload

FAULTS_PER_COMPONENT = 24
COMPONENTS = (Component.REGFILE, Component.L1D, Component.DTLB)


def _min_seconds(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_overhead(benchmark):
    """Armed-tracer campaign throughput >= 0.95x of ``tracer=None``."""
    workload = get_workload("StringSearch")
    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots = record_golden_snapshots(workload, SCALED_A9_CONFIG, golden)
    image = MachineImage.capture(
        workload, SCALED_A9_CONFIG, golden, snapshots
    )
    plan = {
        component: generate_faults(
            component,
            component_bits(SCALED_A9_CONFIG, component),
            golden.cycles,
            count=FAULTS_PER_COMPONENT,
            seed=9,
        )
        for component in COMPONENTS
    }
    total = sum(len(faults) for faults in plan.values())

    tracer = Tracer()

    def armed():
        # Drain between rounds so the finished-span list cannot grow
        # without bound and distort later rounds.
        tracer.drain()
        return run_injection_plan(image, plan, jobs=1, tracer=tracer)

    effects_armed = benchmark.pedantic(
        armed, rounds=3, iterations=1, warmup_rounds=1
    )
    armed_seconds = benchmark.stats.stats.min
    spans = tracer.drain()

    effects_off = run_injection_plan(image, plan, jobs=1)
    off_seconds = _min_seconds(
        lambda: run_injection_plan(image, plan, jobs=1), rounds=3
    )

    ratio = off_seconds / armed_seconds
    benchmark.extra_info["injections"] = total
    benchmark.extra_info["spans_per_run"] = len(spans)
    benchmark.extra_info["tracing_off_seconds"] = round(off_seconds, 4)
    benchmark.extra_info["tracing_on_seconds"] = round(armed_seconds, 4)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 4)

    # One span per component window, never one per injection.
    assert len(spans) == len(COMPONENTS)
    assert effects_armed == effects_off, (
        "an armed tracer changed an injection classification"
    )
    assert ratio >= 0.95, (
        f"tracing-armed throughput is {ratio:.3f}x of tracing-off "
        f"(floor 0.95x)"
    )
