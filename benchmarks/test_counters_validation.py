"""Section IV-D: performance-counter validation, model vs hardware-like
variant.  Paper shape: ~70% of counters within acceptable deviation, worst
offender the instruction TLB."""

from __future__ import annotations

from repro.experiments import counters


def test_counters_validation(benchmark, context, emit):
    comparisons = benchmark.pedantic(counters.data, args=(context,), rounds=1,
                                     iterations=1)
    text = counters.render(context)
    emit("counters_validation", text)

    acceptable = sum(1 for c in comparisons if c.acceptable)
    share = acceptable / len(comparisons)
    assert 0.4 <= share <= 0.95  # paper: ~70%

    # The instruction TLB is the worst counter (the paper's known gem5 vs
    # Cortex-A9 design difference, recreated in the hardware variant).
    worst = max(comparisons, key=lambda c: c.deviation)
    assert worst.counter == "itlb_misses"
