"""Ablation: single-bit vs multi-bit fault models (Section II discussion).

The paper notes that real strikes in modern technologies can flip multiple
adjacent bits, while injection campaigns typically use the single-bit
model - one of the identified sources of FIT underestimation.  This bench
measures how the non-masked fraction changes when every injection flips a
2-bit or 4-bit cluster instead of a single cell (the ``cluster_size``
option of :class:`repro.injection.CampaignConfig`).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.injection.campaign import (
    record_golden_snapshots,
    run_golden,
    run_single_injection,
)
from repro.injection.classify import FaultEffect
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.microarch.config import SCALED_A9_CONFIG
from repro.workloads import get_workload

FAULTS = 30


def test_ablation_multibit_fault_model(benchmark, emit):
    def full_ablation():
        workload = get_workload("Susan E")
        golden = run_golden(workload, SCALED_A9_CONFIG)
        snapshots = record_golden_snapshots(workload, SCALED_A9_CONFIG, golden)
        faults = generate_faults(
            Component.L1D,
            component_bits(SCALED_A9_CONFIG, Component.L1D),
            golden.cycles,
            count=FAULTS,
            seed=33,
        )
        by_cluster = {}
        for bits in (1, 2, 4):
            counts: dict[FaultEffect, int] = {}
            for fault in faults:
                effect = run_single_injection(
                    workload,
                    fault,
                    SCALED_A9_CONFIG,
                    golden,
                    snapshots=snapshots,
                    cluster_size=bits,
                )
                counts[effect] = counts.get(effect, 0) + 1
            by_cluster[bits] = counts
        return by_cluster

    by_cluster = benchmark.pedantic(full_ablation, rounds=1, iterations=1)

    rows = []
    avf = {}
    for bits, counts in by_cluster.items():
        masked = counts.get(FaultEffect.MASKED, 0)
        avf[bits] = 1.0 - masked / FAULTS
        rows.append(
            (
                f"{bits}-bit flip",
                FAULTS,
                counts.get(FaultEffect.SDC, 0),
                counts.get(FaultEffect.APP_CRASH, 0),
                counts.get(FaultEffect.SYS_CRASH, 0),
                f"{avf[bits] * 100:.0f} %",
            )
        )
    emit(
        "ablation_fault_models",
        format_table(
            ("Fault model", "Injections", "SDC", "AppCrash", "SysCrash", "AVF"),
            rows,
            title="Ablation - single-bit vs multi-bit upsets (L1D, Susan E)",
        ),
    )

    # Wider clusters can only touch more live state: with the shared fault
    # list, the non-masked fraction is non-decreasing in cluster width.
    assert avf[2] >= avf[1]
    assert avf[4] >= avf[1]
