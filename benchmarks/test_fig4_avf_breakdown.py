"""Figure 4: fault-injection AVF breakdown per component per benchmark."""

from __future__ import annotations

import pytest

from repro.experiments import fig4
from repro.injection.components import Component


def test_fig4_avf_breakdown(benchmark, context, emit):
    context.injection_results()
    text = benchmark(fig4.render, context)
    emit("fig4_avf_breakdown", text)

    breakdowns = fig4.data(context)
    assert len(breakdowns) == 13
    for rows in breakdowns.values():
        for cell in rows:
            assert cell.sdc + cell.app_crash + cell.sys_crash + cell.masked == (
                pytest.approx(1.0)
            )

    # Paper shape: SDCs concentrate in the data-holding structures (L1D,
    # L2), while L1I faults mostly produce crashes.
    def suite_rate(component, attribute):
        cells = [
            next(c for c in rows if c.component is component)
            for rows in breakdowns.values()
        ]
        return sum(getattr(c, attribute) for c in cells) / len(cells)

    l1i_crash = suite_rate(Component.L1I, "app_crash") + suite_rate(
        Component.L1I, "sys_crash"
    )
    l1i_sdc = suite_rate(Component.L1I, "sdc")
    assert l1i_crash > l1i_sdc
