"""Table III: benchmark inputs and characteristics."""

from __future__ import annotations

from repro.experiments import table3
from repro.workloads import workload_names


def test_table3_benchmarks(benchmark, context, emit):
    text = benchmark(table3.render, context)
    for name in workload_names():
        assert name in text
    emit("table3_benchmarks", text)
