"""Section VI: FIT_raw measurement via the L1 pattern test under beam."""

from __future__ import annotations

from repro.experiments import rawfit


def test_rawfit_measurement(benchmark, context, emit):
    measurement = benchmark.pedantic(
        rawfit.data, args=(context,), kwargs={"beam_hours": 500.0},
        rounds=1, iterations=1,
    )
    emit("rawfit_measurement", rawfit.render(context, beam_hours=500.0))

    assert measurement.strikes > 0
    # The measured per-bit FIT recovers the configured technology value up
    # to the geometry/duty-cycle factor (same order of magnitude).
    assert measurement.detected_upsets > 0
    ratio = measurement.measured_fit_raw / measurement.configured_fit_raw
    assert 0.05 <= ratio <= 1.5
