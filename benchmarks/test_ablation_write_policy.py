"""Ablation: write-back vs write-through L1 data cache.

With write-through there are no dirty lines: an upset can never be written
back to memory, and clean-line evictions heal corruptions - so the L1D AVF
drops.  (The cost on a real machine is write-traffic; here we only measure
the reliability side.)
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import format_table
from repro.injection.campaign import (
    record_golden_snapshots,
    run_golden,
    run_single_injection,
)
from repro.injection.classify import FaultEffect
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.microarch.config import SCALED_A9_CONFIG
from repro.workloads import get_workload

FAULTS = 40

WRITE_THROUGH_CONFIG = dataclasses.replace(
    SCALED_A9_CONFIG,
    name=SCALED_A9_CONFIG.name + "-wt",
    l1d=dataclasses.replace(SCALED_A9_CONFIG.l1d, write_through=True),
)


def campaign(machine) -> dict[FaultEffect, int]:
    workload = get_workload("Qsort")
    golden = run_golden(workload, machine)
    snapshots = record_golden_snapshots(workload, machine, golden)
    faults = generate_faults(
        Component.L1D,
        component_bits(machine, Component.L1D),
        golden.cycles,
        count=FAULTS,
        seed=55,
    )
    counts: dict[FaultEffect, int] = {}
    for fault in faults:
        effect = run_single_injection(
            workload, fault, machine, golden, snapshots=snapshots
        )
        counts[effect] = counts.get(effect, 0) + 1
    return counts


def test_ablation_write_policy(benchmark, emit):
    def run_both():
        return {
            "write-back": campaign(SCALED_A9_CONFIG),
            "write-through": campaign(WRITE_THROUGH_CONFIG),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    avf = {}
    for policy, counts in results.items():
        masked = counts.get(FaultEffect.MASKED, 0)
        avf[policy] = 1.0 - masked / FAULTS
        rows.append(
            (
                policy,
                FAULTS,
                counts.get(FaultEffect.SDC, 0),
                counts.get(FaultEffect.APP_CRASH, 0),
                counts.get(FaultEffect.SYS_CRASH, 0),
                f"{avf[policy] * 100:.0f} %",
            )
        )
    emit(
        "ablation_write_policy",
        format_table(
            ("L1D policy", "Injections", "SDC", "AppCrash", "SysCrash", "AVF"),
            rows,
            title="Ablation - write-back vs write-through L1D (Qsort)",
        ),
    )

    # Write-through can only help: same fault list, strictly fewer
    # propagation paths.
    assert avf["write-through"] <= avf["write-back"]
