"""Table I: simulation throughput per abstraction layer.

Benchmarks the simulator's detailed mode (the paper's microarchitecture
row) and reports measured cycles/second for every layer we implement.
"""

from __future__ import annotations

from repro.experiments import table1
from repro.microarch.system import System
from repro.workloads import get_workload


def test_table1_abstraction_layers(benchmark, context, emit):
    workload = get_workload("Dijkstra")

    def detailed_run():
        system = System(workload.program(context.machine.layout))
        return system.run(max_cycles=100_000_000)

    result = benchmark.pedantic(detailed_run, rounds=3, iterations=1)
    assert result.exited_cleanly

    emit("table1_abstraction_layers", table1.render(context))
