"""Ablation: the background-OS cache-residency channel of the beam model.

The paper attributes the beam System-Crash excess of small-footprint
benchmarks to kernel/OS state resident in otherwise-unused cache lines.
Disabling that channel (strikes on background-OS lines become harmless)
must collapse the System-Crash FIT toward the platform-logic floor -
demonstrating the channel's contribution is what the design claims.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import format_table
from repro.beam.board import ZEDBOARD
from repro.beam.experiment import BeamCampaignConfig, BeamExperiment
from repro.injection.classify import FaultEffect
from repro.workloads import get_workload

BEAM_HOURS = 60.0

#: Board with the OS-residency channel disabled (strikes on background-OS
#: lines are masked); platform logic untouched.
NO_OS_BOARD = dataclasses.replace(
    ZEDBOARD,
    name="zedboard-no-os",
    os_line_outcomes=((FaultEffect.MASKED, 1.0),),
)


def test_ablation_os_residency(benchmark, emit):
    workload = get_workload("Susan C")  # smallest footprint: worst case

    def run_both():
        results = {}
        for label, board in (("full board model", ZEDBOARD),
                             ("no OS residency", NO_OS_BOARD)):
            experiment = BeamExperiment(
                BeamCampaignConfig(beam_hours=BEAM_HOURS, seed=4, board=board)
            )
            results[label] = experiment.run_workload(workload)
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        (
            label,
            f"{result.fit(FaultEffect.SDC):.2f}",
            f"{result.fit(FaultEffect.APP_CRASH):.2f}",
            f"{result.fit(FaultEffect.SYS_CRASH):.2f}",
        )
        for label, result in results.items()
    ]
    emit(
        "ablation_os_residency",
        format_table(
            ("Beam model", "SDC FIT", "AppCrash FIT", "SysCrash FIT"),
            rows,
            title=(
                "Ablation - background-OS cache residency channel "
                "(Susan C, 60 beam hours)"
            ),
        ),
    )

    full = results["full board model"].fit(FaultEffect.SYS_CRASH)
    ablated = results["no OS residency"].fit(FaultEffect.SYS_CRASH)
    assert ablated < full
