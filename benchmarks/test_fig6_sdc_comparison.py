"""Figure 6: SDC FIT - beam vs fault injection.

Paper shape: the two methodologies agree closely on SDC rates - for most
codes within a small factor (10/13 within 4x in the paper).
"""

from __future__ import annotations

from repro.experiments import fig6


def test_fig6_sdc_comparison(benchmark, context, emit):
    context.beam_results()
    context.injection_results()
    text = benchmark(fig6.render, context)
    emit("fig6_sdc_comparison", text)

    rows = fig6.data(context)
    assert len(rows) == 13
    # Most benchmarks agree within an order of magnitude on SDC.
    close = sum(1 for row in rows if abs(row.ratio) <= 10)
    assert close >= 9
