#!/usr/bin/env python3
"""Bring your own workload: assemble a program, run it, and watch a single
injected bit flip propagate to an architectural outcome.

The program below computes the dot product of two vectors and emits it.
We then re-run it three times with hand-placed faults - one in a dead
cache line (masked), one in the live data (SDC), and one in the fetched
code (crash) - to show the classification pipeline end-to-end.
"""

from repro import Assembler, DEFAULT_LAYOUT, System
from repro.injection.classify import classify_run
from repro.workloads.base import pack_words

SOURCE = """
    .text
_start:
    movi r0, 1               ; alive heartbeat
    movi r7, 2
    syscall
    la   r1, vec_a
    la   r2, vec_b
    movi r3, 0               ; accumulator
    movi r4, 8               ; length
dot_loop:
    ldw  r5, [r1]
    ldw  r6, [r2]
    mul  r5, r5, r6
    add  r3, r3, r5
    addi r1, r1, 4
    addi r2, r2, 4
    subi r4, r4, 1
    cmpi r4, 0
    bgt  dot_loop
    mov  r0, r3
    movi r7, 3               ; write_word(result)
    syscall
    movi r0, 0
    movi r7, 0               ; exit(0)
    syscall
    .data
vec_a: .word 1, 2, 3, 4, 5, 6, 7, 8
vec_b: .word 8, 7, 6, 5, 4, 3, 2, 1
"""

EXPECTED = sum((i + 1) * (8 - i) for i in range(8))


def build_system() -> System:
    assembler = Assembler(
        text_base=DEFAULT_LAYOUT.user_text_base,
        data_base=DEFAULT_LAYOUT.user_data_base,
    )
    return System(assembler.assemble(SOURCE, entry="_start"))


def run_with_fault(label, mutate):
    system = build_system()
    events = [(400, lambda: mutate(system))] if mutate else None
    result = system.run(max_cycles=1_000_000, events=events)
    golden = pack_words([EXPECTED])
    effect = classify_run(result, golden, system)
    print(f"  {label:35s} -> {effect.label:9s} ({result.outcome})")
    return effect


def flip_live_data(system: System) -> None:
    # vec_a[0] sits in a D-cache line once loaded; find and corrupt it.
    vec_a = system.user_program.symbols["vec_a"]
    for bit in range(system.l1d.data_bits):
        line = system.l1d.line_at(bit)
        if line.valid and system.l1d.line_base_paddr(bit) == (vec_a & ~31):
            system.l1d.flip_bit(bit + 4)  # bit 4 of the first byte
            return
    # Not cached yet: corrupt memory directly (same architectural effect).
    system.memory.data[vec_a] ^= 0x10


def flip_fetched_code(system: System) -> None:
    entry = system.user_program.entry
    # Corrupt the opcode byte of the loop's mul instruction in memory and
    # invalidate L1I so the corrupted encoding is refetched.
    mul_addr = entry + 9 * 4 + 8
    system.memory.data[mul_addr + 3] ^= 0xFF
    system.l1i.invalidate_all()
    system.l2.invalidate_all()


def main() -> None:
    print(f"dot product, expected result: {EXPECTED}")
    run_with_fault("no fault", None)
    run_with_fault("flip in an unused cache line", lambda s: s.l2.flip_bit(123_456))
    run_with_fault("flip in live input data", flip_live_data)
    run_with_fault("flip in fetched code", flip_fetched_code)


if __name__ == "__main__":
    main()
