#!/usr/bin/env python3
"""Adaptive precision-targeted fault injection (sequential stopping).

A fixed campaign buys one precision with one sample size for every
component; the adaptive engine buys a *target* precision with the
smallest sample its stopping rule can certify, per component.  This
example asks for every AVF margin and per-class Wilson half-width to be
within +/-15% and prints how the strata converged, then how many
injections a fixed plan at the same target would have cost.

The reported tallies are bit-identical for any ``jobs``/``batch_size``
and across interrupt/resume - they are the minimal satisfying prefix of
the same deterministic fault stream a fixed campaign draws from.  The
mathematics (Leveugle margins, Wilson intervals, the stopping rule) is
worked through in docs/STATISTICS.md.
"""

from repro import CampaignConfig, get_workload
from repro.analysis.report import adaptive_margins_table
from repro.injection.adaptive import AdaptiveCampaign, fixed_equivalent_faults

TARGET = 0.15       # +/-15 points on every tracked rate
CONFIDENCE = 0.99


def main() -> None:
    workload = get_workload("StringSearch")
    campaign = AdaptiveCampaign(
        CampaignConfig(
            target_margin=TARGET,
            confidence=CONFIDENCE,
            batch_size=20,
            min_faults=10,
            max_faults=120,
        ),
        progress=lambda message: print(f"  .. {message}"),
    )
    print(
        f"adaptive campaign on {workload.name}: stop when every rate is "
        f"within +/-{TARGET:.0%} at {CONFIDENCE:.0%} confidence"
    )
    result = campaign.run_workload(workload, use_cache=False)

    diagnostics = campaign.diagnostics[workload.name]
    print()
    print(adaptive_margins_table(diagnostics))

    fixed = sum(
        fixed_equivalent_faults(tally.population_bits, TARGET, CONFIDENCE)
        for tally in result.components.values()
    )
    executed = diagnostics.total_executed
    print(
        f"\nadaptive executed {executed} injections; a fixed plan at the "
        f"same target would run {fixed} "
        f"({100.0 * (1 - executed / fixed):.0f}% saved)"
    )


if __name__ == "__main__":
    main()
