#!/usr/bin/env python3
"""A GeFIN-style statistical fault-injection campaign (Section IV-C).

Injects single-bit transient faults into the six components of the paper
(L1I/L1D/L2 caches, physical register file, I/D TLBs) while the Qsort
benchmark runs on top of the kernel, classifies every outcome, and converts
the per-component AVFs into FIT-rate predictions via

    FIT = FIT_raw(bit) x Size(bits) x AVF.

Sample size here is small so the example finishes in about a minute; the
printed Leveugle error margins make the statistical cost explicit.  Use
REPRO_FAULTS / the benchmarks harness for full campaigns.
"""

from repro import CampaignConfig, InjectionCampaign, get_workload
from repro.analysis.avf import avf_breakdown
from repro.analysis.fit_model import injection_fit


def main() -> None:
    workload = get_workload("Qsort")
    campaign = InjectionCampaign(
        CampaignConfig(faults_per_component=25),
        progress=lambda message: print(f"  .. {message}"),
    )
    print(f"injecting 6 x 25 faults into {workload.name} (cached on re-run)")
    result = campaign.run_workload(workload)

    print(f"\nAVF breakdown ({result.golden_cycles:,} golden cycles):")
    header = f"{'component':14s} {'SDC':>7s} {'AppCr':>7s} {'SysCr':>7s} {'AVF':>7s} {'+/-':>6s}"
    print(header)
    for cell in avf_breakdown(result):
        margin = result.components[cell.component].margin
        print(
            f"{cell.component.label:14s} "
            f"{cell.sdc * 100:6.1f}% {cell.app_crash * 100:6.1f}% "
            f"{cell.sys_crash * 100:6.1f}% {cell.avf * 100:6.1f}% "
            f"{margin * 100:5.1f}%"
        )

    fits = injection_fit(result)
    print("\npredicted FIT rates (FIT_raw x size x AVF):")
    print(f"  SDC       {fits.sdc:8.3f} FIT")
    print(f"  AppCrash  {fits.app_crash:8.3f} FIT")
    print(f"  SysCrash  {fits.sys_crash:8.3f} FIT")
    print(f"  total     {fits.total:8.3f} FIT")


if __name__ == "__main__":
    main()
