#!/usr/bin/env python3
"""A simulated neutron-beam campaign (Section IV-B) and the head-to-head
comparison with fault injection (Section VI).

Irradiates the Susan C benchmark for a configurable number of effective
beam hours: strikes are Poisson-sampled per component, executed on the
warm, steady-state machine (background-OS content in unused cache lines,
the online SDC check routine resident), and classified with the beam
protocol - golden compare, alive watchdog, restart attempt vs unreachable
board.  Un-modeled platform logic (the Zynq FPGA-ARM interface) is covered
by the calibrated board model.
"""

from repro import (
    BeamCampaignConfig,
    BeamExperiment,
    CampaignConfig,
    FaultEffect,
    InjectionCampaign,
    get_workload,
)
from repro.analysis.comparison import signed_ratio
from repro.analysis.fit_model import injection_fit

BEAM_HOURS = 80.0


def main() -> None:
    workload = get_workload("Susan C")

    print(f"beam campaign: {workload.name}, {BEAM_HOURS:g} effective hours")
    experiment = BeamExperiment(BeamCampaignConfig(beam_hours=BEAM_HOURS))
    beam = experiment.run_workload(workload)
    print(f"  fluence          : {beam.fluence:.3e} n/cm^2")
    print(f"  natural exposure : {beam.natural_years:,.0f} years")
    print(f"  strikes simulated: {beam.strikes_simulated} "
          f"(+{beam.platform_strikes} on platform logic)")
    for effect in (FaultEffect.SDC, FaultEffect.APP_CRASH, FaultEffect.SYS_CRASH):
        low, high = beam.fit_interval(effect)
        print(
            f"  {effect.label:9s} {beam.errors(effect):3d} events -> "
            f"{beam.fit(effect):7.2f} FIT  (95% CI {low:6.2f} - {high:6.2f})"
        )

    print("\nfault-injection prediction for the same benchmark:")
    campaign = InjectionCampaign(CampaignConfig(faults_per_component=25))
    fits = injection_fit(campaign.run_workload(workload))
    print(f"  SDC      {fits.sdc:7.2f} FIT")
    print(f"  AppCrash {fits.app_crash:7.2f} FIT")
    print(f"  SysCrash {fits.sys_crash:7.2f} FIT")

    print("\nbeam / injection ratios (positive: beam higher - cf. Figs 6-8):")
    for effect, injection_value in (
        (FaultEffect.SDC, fits.sdc),
        (FaultEffect.APP_CRASH, fits.app_crash),
        (FaultEffect.SYS_CRASH, fits.sys_crash),
    ):
        ratio = signed_ratio(
            beam.fit(effect),
            injection_value,
            beam.detection_limit_fit(),
            fits.detection_limit,
        )
        print(f"  {effect.label:9s} {ratio:+8.1f}x")


if __name__ == "__main__":
    main()
