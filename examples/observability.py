#!/usr/bin/env python3
"""Microarchitectural observability: where did the fault strike?

Section IV-C: unlike beam experiments, microarchitecture-level injection
"offers significant amount of observability, allowing distinction of where
exactly did the fault strike (e.g., whether it was on kernel or user mode
or data, whether the corrupted entry was used or not) but also detailed
information of what was the system effect."

This example runs an instrumented mini-campaign on the L1 data cache and breaks
the outcomes down by the memory region the struck line was holding -
the analysis a beam experiment fundamentally cannot produce.
"""

from collections import Counter, defaultdict

from repro import get_workload
from repro.injection.campaign import (
    record_golden_snapshots,
    run_golden,
    run_instrumented_injection,
)
from repro.injection.components import Component, component_bits
from repro.injection.fault import generate_faults
from repro.microarch.config import SCALED_A9_CONFIG

FAULTS = 60


def main() -> None:
    workload = get_workload("Qsort")
    print(f"instrumented campaign: {FAULTS} L1D faults into {workload.name}\n")

    golden = run_golden(workload, SCALED_A9_CONFIG)
    snapshots = record_golden_snapshots(workload, SCALED_A9_CONFIG, golden)
    faults = generate_faults(
        Component.L1D,
        component_bits(SCALED_A9_CONFIG, Component.L1D),
        golden.cycles,
        count=FAULTS,
        seed=7,
    )

    by_region = defaultdict(Counter)
    modes = Counter()
    for fault in faults:
        observation = run_instrumented_injection(
            workload, fault, SCALED_A9_CONFIG, golden, snapshots=snapshots
        )
        region = observation.target_region or "(invalid line)"
        by_region[region][observation.effect.label] += 1
        modes[observation.mode_at_injection] += 1

    print(f"strike mode: {dict(modes)}\n")
    print(f"{'struck region':16s} {'strikes':>8s}  outcome breakdown")
    for region, outcomes in sorted(
        by_region.items(), key=lambda item: -sum(item[1].values())
    ):
        total = sum(outcomes.values())
        detail = ", ".join(f"{label} x{count}" for label, count in outcomes.items())
        print(f"{region:16s} {total:>8d}  {detail}")

    print(
        "\nreading: strikes on lines holding kernel text/data threaten the"
        "\nsystem; user data strikes produce SDCs; invalid lines mask."
    )


if __name__ == "__main__":
    main()
