#!/usr/bin/env python3
"""Quickstart: boot the simulated machine and run a benchmark.

Runs the CRC32 workload (a MiBench analogue assembled to the simulated
ISA) on the full-system model - kernel, MMU, caches, TLBs - validates the
output against the pure-Python oracle, and prints the performance counters
the paper uses for model validation (Section IV-D).
"""

from repro import DEFAULT_LAYOUT, System, get_workload


def main() -> None:
    workload = get_workload("CRC32")
    print(f"benchmark      : {workload.name}")
    print(f"paper input    : {workload.paper_input}")
    print(f"scaled input   : {workload.scaled_input}")
    print(f"characteristics: {workload.characteristics.describe()}")
    print()

    system = System(workload.program(DEFAULT_LAYOUT))
    result = system.run(max_cycles=50_000_000)

    print(f"outcome        : {result.outcome}")
    print(f"output         : {result.output.hex()} "
          f"({'matches oracle' if result.output == workload.reference_output() else 'MISMATCH'})")
    print(f"heartbeats     : {result.alive_count}")
    print()
    print("performance counters (Section IV-D validation set):")
    for name, value in result.counters.paper_counters().items():
        print(f"  {name:15s} {value:>12,}")
    print()
    print("cache state after the run:")
    for cache, occupancy in system.cache_occupancy().items():
        print(f"  {cache:4s} occupancy {occupancy * 100:5.1f} %")


if __name__ == "__main__":
    main()
