#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs (or loads from the .repro_cache) the full fault-injection and beam
campaigns over the 13-benchmark suite, then prints Tables I-IV, Figures
3-10, the Section IV-D counter validation, and the Section VI FIT_raw
measurement.  Campaign scale is controlled by REPRO_FAULTS and
REPRO_BEAM_HOURS; with the shipped cache this completes in seconds, and a
cold run at default scale takes ~30-45 minutes on one core.
"""

import time

from repro.experiments import get_context
from repro.experiments import (
    counters,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    rawfit,
    table1,
    table2,
    table3,
    table4,
)

SECTIONS = (
    ("Table I", table1.render),
    ("Table II", table2.render),
    ("Table III", table3.render),
    ("Table IV", table4.render),
    ("Figure 3", fig3.render),
    ("Figure 4", fig4.render),
    ("Figure 5", fig5.render),
    ("Figure 6", fig6.render),
    ("Figure 7", fig7.render),
    ("Figure 8", fig8.render),
    ("Figure 9", fig9.render),
    ("Figure 10", fig10.render),
    ("Section IV-D (counters)", counters.render),
    ("Section VI (FIT_raw)", rawfit.render),
)


def main() -> None:
    context = get_context()
    print(
        f"campaign scale: {context.faults_per_component} faults/component, "
        f"{context.beam_hours:g} beam hours per benchmark\n"
    )
    for title, renderer in SECTIONS:
        start = time.time()
        body = renderer(context)
        print("=" * 78)
        print(body)
        print(f"[{title} in {time.time() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
